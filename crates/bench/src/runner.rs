//! The five-accelerator comparison runner behind Figs. 10–13.
//!
//! For every model, traces are generated layer by layer (one set of
//! synthetic weights and activations); the four baselines consume the dense
//! form and the SmartExchange accelerator the compressed form, exactly the
//! paper's equal-footing protocol. FC layers are excluded (Figs. 10–12
//! exclude them for fairness to SCNN) unless requested; SCNN skips models
//! containing squeeze-excite layers (EfficientNet-B0), as in the paper.
//!
//! Trace generation — the dominant cost (it runs the SmartExchange
//! decomposition per layer) — executes on the parallel work queue of
//! `se_core::pipeline` via [`TraceStream`]'s batched prefetch; the worker
//! count comes from `RunnerOptions::traces.se_config.parallelism()`.
//! Results are reassembled in network order, so a comparison sweep is
//! bit-identical for every worker count.

use crate::Result;
use se_baselines::{BaselineConfig, BitPragmatic, CambriconX, DianNao, Scnn};
use se_hw::sim::SeAccelerator;
use se_hw::{Accelerator, EnergyModel, HwError, RunResult, SeAcceleratorConfig};
use se_ir::NetworkDesc;
use se_models::traces::{TraceOptions, TraceStream};

/// Names of the five accelerators in presentation order.
pub const ACCEL_NAMES: [&str; 5] =
    ["DianNao", "SCNN", "Cambricon-X", "Bit-pragmatic", "SmartExchange"];

/// One model's results across the five accelerators (`None` where the
/// design cannot run the model, e.g. SCNN on EfficientNet-B0).
#[derive(Debug, Clone)]
pub struct ModelComparison {
    /// Model name.
    pub model: String,
    /// Results indexed like [`ACCEL_NAMES`].
    pub runs: [Option<RunResult>; 5],
}

impl ModelComparison {
    /// Total energy in mJ per accelerator (None where unsupported).
    pub fn energies_mj(&self, em: &EnergyModel, cfg: &SeAcceleratorConfig) -> [Option<f64>; 5] {
        let mut out = [None; 5];
        for (i, run) in self.runs.iter().enumerate() {
            out[i] = run.as_ref().map(|r| r.energy_mj(em, cfg));
        }
        out
    }

    /// Total latency in cycles per accelerator.
    pub fn cycles(&self) -> [Option<u64>; 5] {
        let mut out = [None; 5];
        for (i, run) in self.runs.iter().enumerate() {
            out[i] = run.as_ref().map(RunResult::total_cycles);
        }
        out
    }

    /// Total DRAM bytes per accelerator.
    pub fn dram_bytes(&self) -> [Option<u64>; 5] {
        let mut out = [None; 5];
        for (i, run) in self.runs.iter().enumerate() {
            out[i] = run.as_ref().map(|r| r.mem_totals().dram_total_bytes());
        }
        out
    }
}

/// Options for a comparison sweep.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Trace generation options (seed, SE config, FC inclusion).
    pub traces: TraceOptions,
    /// SmartExchange accelerator configuration.
    pub se_cfg: SeAcceleratorConfig,
    /// Baseline resources.
    pub baseline_cfg: BaselineConfig,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            traces: TraceOptions::fast(),
            se_cfg: SeAcceleratorConfig::default(),
            baseline_cfg: BaselineConfig::default(),
        }
    }
}

impl RunnerOptions {
    /// The `--fast` profile: sampled output rows and fewer decomposition
    /// iterations.
    pub fn fast() -> Self {
        let mut o = RunnerOptions::default();
        o.se_cfg.row_sample = 4;
        o
    }

    /// Sets the worker-thread count for trace generation (results are
    /// bit-identical for every value).
    ///
    /// # Errors
    ///
    /// Propagates the configuration error for `n == 0`.
    pub fn with_parallelism(mut self, n: usize) -> Result<Self> {
        self.traces.se_config = self.traces.se_config.with_parallelism(n)?;
        Ok(self)
    }
}

/// Runs one model through all five accelerators.
///
/// # Errors
///
/// Propagates trace-generation failures and unexpected simulator errors
/// (`UnsupportedTrace` is converted into a `None` run instead).
pub fn compare_model(net: &NetworkDesc, opts: &RunnerOptions) -> Result<ModelComparison> {
    let diannao = DianNao::new(opts.baseline_cfg.clone())?;
    let scnn = Scnn::new(opts.baseline_cfg.clone())?;
    let cambricon = CambriconX::new(opts.baseline_cfg.clone())?;
    let pragmatic = BitPragmatic::new(opts.se_cfg.clone())?;
    let se = SeAccelerator::new(opts.se_cfg.clone())?;

    let mut runs: [Option<RunResult>; 5] = [
        Some(RunResult::default()),
        Some(RunResult::default()),
        Some(RunResult::default()),
        Some(RunResult::default()),
        Some(RunResult::default()),
    ];
    for pair in TraceStream::new(net, opts.traces.clone()) {
        let pair = pair?;
        let dense_targets: [(usize, &dyn Accelerator); 4] =
            [(0, &diannao), (1, &scnn), (2, &cambricon), (3, &pragmatic)];
        for (idx, accel) in dense_targets {
            if runs[idx].is_none() {
                continue;
            }
            match accel.process_layer(&pair.dense) {
                Ok(layer) => {
                    runs[idx].as_mut().expect("checked above").layers.push(layer);
                }
                Err(HwError::UnsupportedTrace { .. }) => runs[idx] = None,
                Err(e) => return Err(e.into()),
            }
        }
        let layer = se.process_layer(&pair.se)?;
        runs[4].as_mut().expect("SE always supported").layers.push(layer);
    }
    Ok(ModelComparison { model: net.name().to_string(), runs })
}

/// Runs a set of models through all five accelerators.
///
/// # Errors
///
/// Propagates the first model failure.
pub fn compare_models(
    models: &[NetworkDesc],
    opts: &RunnerOptions,
) -> Result<Vec<ModelComparison>> {
    models.iter().map(|m| compare_model(m, opts)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_ir::{Dataset, LayerDesc, LayerKind};

    fn tiny() -> NetworkDesc {
        NetworkDesc::new(
            "tiny",
            Dataset::Cifar10,
            vec![
                LayerDesc::new(
                    "c1",
                    LayerKind::Conv2d {
                        in_channels: 3,
                        out_channels: 8,
                        kernel: 3,
                        stride: 1,
                        padding: 1,
                    },
                    (8, 8),
                ),
                LayerDesc::new("se1", LayerKind::SqueezeExcite { channels: 8, reduced: 2 }, (8, 8)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn scnn_drops_squeeze_excite_models() {
        let cmp = compare_model(&tiny(), &RunnerOptions::default()).unwrap();
        assert!(cmp.runs[0].is_some(), "DianNao runs");
        assert!(cmp.runs[1].is_none(), "SCNN cannot run squeeze-excite");
        assert!(cmp.runs[4].is_some(), "SmartExchange runs");
        let e = cmp.energies_mj(&EnergyModel::default(), &SeAcceleratorConfig::default());
        assert!(e[0].unwrap() > 0.0);
        assert!(e[1].is_none());
    }

    #[test]
    fn parallel_comparison_is_bit_identical_to_serial() {
        let net = tiny();
        let serial_opts = RunnerOptions::default().with_parallelism(1).unwrap();
        let serial = compare_model(&net, &serial_opts).unwrap();
        let parallel_opts = RunnerOptions::default().with_parallelism(4).unwrap();
        let parallel = compare_model(&net, &parallel_opts).unwrap();
        assert_eq!(serial.runs, parallel.runs);
    }

    #[test]
    fn se_beats_diannao_on_energy() {
        let cmp = compare_model(&tiny(), &RunnerOptions::default()).unwrap();
        let em = EnergyModel::default();
        let cfg = SeAcceleratorConfig::default();
        let e = cmp.energies_mj(&em, &cfg);
        assert!(e[4].unwrap() < e[0].unwrap(), "SE {} !< DianNao {}", e[4].unwrap(), e[0].unwrap());
    }
}
