//! The five-accelerator comparison runner behind Figs. 10–13.
//!
//! For every model, traces are generated layer by layer (one set of
//! synthetic weights and activations); the four baselines consume the dense
//! form and the SmartExchange accelerator the compressed form, exactly the
//! paper's equal-footing protocol. FC layers are excluded (Figs. 10–12
//! exclude them for fairness to SCNN) unless requested; SCNN skips models
//! containing squeeze-excite layers (EfficientNet-B0), as in the paper.
//!
//! # Two-level parallelism
//!
//! Both halves of a sweep run on the deterministic work queue of
//! [`se_core::pipeline`]:
//!
//! 1. **Trace generation** — the SmartExchange decomposition per layer —
//!    executes in parallel batches via [`TraceStream`]'s prefetch; the
//!    worker count comes from `RunnerOptions::traces.se_config
//!    .parallelism()`.
//! 2. **Simulation** — each [`TracePair`] fans out as five `(layer,
//!    accelerator)` grid jobs drained by `RunnerOptions::sim_parallelism`
//!    workers ([`se_core::pipeline::try_run_grid`]).
//!
//! Results are reassembled in network order at both levels, so a
//! comparison sweep is **bit-identical for every worker count** at either
//! level (enforced by tests). Every job is a pure function of its trace —
//! no shared mutable state — which is what makes the guarantee hold.
//!
//! On top of the fan-out, every accelerator memoizes the data-independent
//! tiling/cycle skeleton of each distinct layer *geometry* in a per-run
//! schedule cache ([`se_hw::schedule`]): ResNet164 repeats each bottleneck
//! shape 18× per stage, so the skeleton is derived once and only the
//! data-dependent terms (zero rows, Booth digits, rebuild costs) are
//! re-evaluated per layer.

use crate::Result;
use se_baselines::BaselineConfig;
use se_core::pipeline;
use se_hw::sim::SeAccelerator;
use se_hw::{Accelerator, EnergyModel, RunResult, SeAcceleratorConfig};
use se_ir::NetworkDesc;
use se_models::traces::{TraceOptions, TracePair, TraceStream, MAX_BATCH_PAIRS};
use se_serve::BatchEngine;
use std::path::Path;

/// Names of the five accelerators in presentation order (shared with the
/// serving subsystem, which hosts the single five-lane dispatch).
pub use se_serve::ACCEL_NAMES;

/// One model's results across the five accelerators (`None` where the
/// design cannot run the model, e.g. SCNN on EfficientNet-B0).
#[derive(Debug, Clone)]
pub struct ModelComparison {
    /// Model name.
    pub model: String,
    /// Results indexed like [`ACCEL_NAMES`].
    pub runs: [Option<RunResult>; 5],
}

impl ModelComparison {
    /// Total energy in mJ per accelerator (None where unsupported).
    pub fn energies_mj(&self, em: &EnergyModel, cfg: &SeAcceleratorConfig) -> [Option<f64>; 5] {
        let mut out = [None; 5];
        for (i, run) in self.runs.iter().enumerate() {
            out[i] = run.as_ref().map(|r| r.energy_mj(em, cfg));
        }
        out
    }

    /// Total latency in cycles per accelerator.
    pub fn cycles(&self) -> [Option<u64>; 5] {
        let mut out = [None; 5];
        for (i, run) in self.runs.iter().enumerate() {
            out[i] = run.as_ref().map(RunResult::total_cycles);
        }
        out
    }

    /// Total DRAM bytes per accelerator.
    pub fn dram_bytes(&self) -> [Option<u64>; 5] {
        let mut out = [None; 5];
        for (i, run) in self.runs.iter().enumerate() {
            out[i] = run.as_ref().map(|r| r.mem_totals().dram_total_bytes());
        }
        out
    }
}

/// Options for a comparison sweep.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Trace generation options (seed, SE config, FC inclusion).
    pub traces: TraceOptions,
    /// SmartExchange accelerator configuration.
    pub se_cfg: SeAcceleratorConfig,
    /// Baseline resources.
    pub baseline_cfg: BaselineConfig,
    /// Worker threads draining the `(layer, accelerator)` simulation grid
    /// (results are bit-identical for every value). Defaults to the trace
    /// generator's worker count.
    pub sim_parallelism: usize,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        let traces = TraceOptions::fast();
        let sim_parallelism = traces.se_config.parallelism();
        RunnerOptions {
            traces,
            se_cfg: SeAcceleratorConfig::default(),
            baseline_cfg: BaselineConfig::default(),
            sim_parallelism,
        }
    }
}

impl RunnerOptions {
    /// The `--fast` profile: sampled output rows and fewer decomposition
    /// iterations.
    pub fn fast() -> Self {
        let mut o = RunnerOptions::default();
        o.se_cfg.row_sample = 4;
        o
    }

    /// Sets the worker-thread count for **both** levels — trace generation
    /// and the simulation grid (results are bit-identical for every value).
    ///
    /// # Errors
    ///
    /// Propagates the configuration error for `n == 0`.
    pub fn with_parallelism(mut self, n: usize) -> Result<Self> {
        self.traces.se_config = self.traces.se_config.with_parallelism(n)?;
        self.sim_parallelism = n;
        Ok(self)
    }

    /// Sets the worker-thread count for the simulation grid alone, leaving
    /// trace generation untouched.
    ///
    /// # Errors
    ///
    /// Rejects `n == 0`.
    pub fn with_sim_parallelism(mut self, n: usize) -> Result<Self> {
        if n == 0 {
            return Err("sim parallelism must be at least 1".into());
        }
        self.sim_parallelism = n;
        Ok(self)
    }
}

/// The five accelerator instances of one comparison run: the serving
/// subsystem's [`BatchEngine`], which hosts the single five-lane dispatch
/// (`simulate_lane`) and whose per-accelerator geometry/schedule caches
/// are shared across the run's grid jobs.
fn accel_set(opts: &RunnerOptions) -> Result<BatchEngine> {
    BatchEngine::new(opts.se_cfg.clone(), opts.baseline_cfg.clone())
}

fn fresh_runs() -> [Option<RunResult>; 5] {
    [
        Some(RunResult::default()),
        Some(RunResult::default()),
        Some(RunResult::default()),
        Some(RunResult::default()),
        Some(RunResult::default()),
    ]
}

/// Fans one chunk of trace pairs out as `(layer, accelerator)` grid jobs
/// and folds the results into `runs` in network order. An unsupported
/// layer turns its whole lane to `None`; lanes already dead when the chunk
/// starts are skipped entirely (the serial protocol never simulated them),
/// which keeps every job a pure function of `(chunk, dead-lane set)` — the
/// set only changes at chunk boundaries, so worker scheduling still cannot
/// leak into the results.
fn simulate_chunk(
    accels: &BatchEngine,
    chunk: &[TracePair],
    workers: usize,
    runs: &mut [Option<RunResult>; 5],
) -> Result<()> {
    let dead: Vec<bool> = runs.iter().map(Option::is_none).collect();
    let grid = pipeline::try_run_grid(chunk, ACCEL_NAMES.len(), workers, |_, pair, lane| {
        if dead[lane] {
            return Ok(None);
        }
        accels.simulate_lane(pair, lane)
    })?;
    for per_pair in grid {
        for (lane, result) in per_pair.into_iter().enumerate() {
            match result {
                Some(layer) => {
                    if let Some(run) = runs[lane].as_mut() {
                        run.layers.push(layer);
                    }
                }
                None => runs[lane] = None,
            }
        }
    }
    Ok(())
}

/// Pairs per simulation chunk: enough grid jobs to feed the workers while
/// keeping the number of trace pairs alive at once bounded.
fn chunk_pairs(sim_parallelism: usize) -> usize {
    MAX_BATCH_PAIRS.max(sim_parallelism.div_ceil(ACCEL_NAMES.len()))
}

/// Drains the network's trace stream in chunks of up to `chunk_len` pairs,
/// invoking `consume` on each — the shared generation half of
/// [`compare_model`] and [`run_se_model`].
fn for_each_chunk(
    net: &NetworkDesc,
    traces: &TraceOptions,
    chunk_len: usize,
    mut consume: impl FnMut(&[TracePair]) -> Result<()>,
) -> Result<()> {
    let mut stream = TraceStream::new(net, traces.clone());
    loop {
        let mut chunk = Vec::with_capacity(chunk_len);
        while chunk.len() < chunk_len {
            match stream.next() {
                Some(pair) => chunk.push(pair?),
                None => break,
            }
        }
        if chunk.is_empty() {
            return Ok(());
        }
        consume(&chunk)?;
    }
}

/// Runs one model through all five accelerators.
///
/// # Errors
///
/// Propagates trace-generation failures and unexpected simulator errors
/// (`UnsupportedTrace` is converted into a `None` run instead).
pub fn compare_model(net: &NetworkDesc, opts: &RunnerOptions) -> Result<ModelComparison> {
    let accels = accel_set(opts)?;
    let mut runs = fresh_runs();
    for_each_chunk(net, &opts.traces, chunk_pairs(opts.sim_parallelism), |chunk| {
        simulate_chunk(&accels, chunk, opts.sim_parallelism, &mut runs)
    })?;
    Ok(ModelComparison { model: net.name().to_string(), runs })
}

/// Runs pre-generated trace pairs through all five accelerators on the
/// simulation grid — [`compare_model`] without the trace-generation half.
/// Useful when traces are reused across sweeps (and for benchmarking the
/// simulation fan-out in isolation); results are bit-identical to
/// [`compare_model`] on the same pairs.
///
/// # Errors
///
/// Propagates unexpected simulator errors.
pub fn compare_pairs(
    model: &str,
    pairs: &[TracePair],
    opts: &RunnerOptions,
) -> Result<ModelComparison> {
    let accels = accel_set(opts)?;
    let mut runs = fresh_runs();
    simulate_chunk(&accels, pairs, opts.sim_parallelism, &mut runs)?;
    Ok(ModelComparison { model: model.to_string(), runs })
}

/// Runs one model through the SmartExchange accelerator alone, with the
/// same two-level parallelism as [`compare_model`] (a single-lane grid) —
/// the engine behind the energy-breakdown binaries.
///
/// # Errors
///
/// Propagates trace-generation and simulator failures.
pub fn run_se_model(net: &NetworkDesc, opts: &RunnerOptions) -> Result<RunResult> {
    let se = SeAccelerator::new(opts.se_cfg.clone())?;
    let mut run = RunResult::default();
    for_each_chunk(net, &opts.traces, chunk_pairs(opts.sim_parallelism), |chunk| {
        let layers = pipeline::try_run_ordered(chunk, opts.sim_parallelism, |_, pair| {
            se.process_layer(&pair.se)
        })?;
        run.layers.extend(layers);
        Ok(())
    })?;
    Ok(run)
}

/// Runs pre-generated trace pairs through the SmartExchange accelerator
/// alone — [`run_se_model`] without the trace-generation half; results are
/// bit-identical to it on the same pairs.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn run_se_pairs(pairs: &[TracePair], opts: &RunnerOptions) -> Result<RunResult> {
    let se = SeAccelerator::new(opts.se_cfg.clone())?;
    let layers = pipeline::try_run_ordered(pairs, opts.sim_parallelism, |_, pair| {
        se.process_layer(&pair.se)
    })?;
    Ok(RunResult { layers })
}

/// [`compare_model`] with an optional persisted-trace cache: when
/// `traces_dir` holds an artifact for this network and these trace options
/// (built by `se trace build`; see `se_models::traces`), the expensive
/// decompositions are replayed from disk instead of regenerated. Cached
/// and direct runs are **bit-identical** — traces round-trip exactly and
/// the simulation grid is a pure function of the pairs (enforced by
/// tests). A cache miss falls back to the streaming path untouched.
///
/// # Errors
///
/// Propagates trace-generation/load failures and unexpected simulator
/// errors (a corrupt or mismatched artifact is an error, not a miss).
pub fn compare_model_cached(
    net: &NetworkDesc,
    opts: &RunnerOptions,
    traces_dir: Option<&Path>,
) -> Result<ModelComparison> {
    if let Some(dir) = traces_dir {
        if let Some(pairs) = se_models::traces::cached_trace_pairs(net, &opts.traces, dir)? {
            return compare_pairs(net.name(), &pairs, opts);
        }
    }
    compare_model(net, opts)
}

/// [`run_se_model`] with the optional persisted-trace cache of
/// [`compare_model_cached`] (same hit/miss and bit-identity semantics).
///
/// # Errors
///
/// Propagates trace-generation/load and simulator failures.
pub fn run_se_model_cached(
    net: &NetworkDesc,
    opts: &RunnerOptions,
    traces_dir: Option<&Path>,
) -> Result<RunResult> {
    if let Some(dir) = traces_dir {
        if let Some(pairs) = se_models::traces::cached_trace_pairs(net, &opts.traces, dir)? {
            return run_se_pairs(&pairs, opts);
        }
    }
    run_se_model(net, opts)
}

/// Runs a set of models through all five accelerators.
///
/// # Errors
///
/// Propagates the first model failure, naming the failing model in the
/// error (completed models' work is discarded with it — a sweep is
/// all-or-nothing).
pub fn compare_models(
    models: &[NetworkDesc],
    opts: &RunnerOptions,
) -> Result<Vec<ModelComparison>> {
    compare_models_cached(models, opts, None)
}

/// [`compare_models`] with the optional persisted-trace cache of
/// [`compare_model_cached`].
///
/// # Errors
///
/// Propagates the first model failure, naming the failing model.
pub fn compare_models_cached(
    models: &[NetworkDesc],
    opts: &RunnerOptions,
    traces_dir: Option<&Path>,
) -> Result<Vec<ModelComparison>> {
    models
        .iter()
        .map(|m| {
            compare_model_cached(m, opts, traces_dir)
                .map_err(|e| format!("model {} failed: {e}", m.name()).into())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_ir::{Dataset, LayerDesc, LayerKind};

    fn tiny() -> NetworkDesc {
        NetworkDesc::new(
            "tiny",
            Dataset::Cifar10,
            vec![
                LayerDesc::new(
                    "c1",
                    LayerKind::Conv2d {
                        in_channels: 3,
                        out_channels: 8,
                        kernel: 3,
                        stride: 1,
                        padding: 1,
                    },
                    (8, 8),
                ),
                LayerDesc::new("se1", LayerKind::SqueezeExcite { channels: 8, reduced: 2 }, (8, 8)),
            ],
        )
        .unwrap()
    }

    /// Repeated geometries (to exercise the schedule caches) plus a
    /// squeeze-excite layer (to exercise the SCNN `None` lane).
    fn multi_geometry() -> NetworkDesc {
        let conv = |name: &str, ci: usize, co: usize, hw: usize| {
            LayerDesc::new(
                name,
                LayerKind::Conv2d {
                    in_channels: ci,
                    out_channels: co,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
                (hw, hw),
            )
        };
        NetworkDesc::new(
            "multi",
            Dataset::Cifar10,
            vec![
                conv("a1", 3, 8, 8),
                conv("b1", 8, 8, 8),
                conv("b2", 8, 8, 8),
                LayerDesc::new("se1", LayerKind::SqueezeExcite { channels: 8, reduced: 2 }, (8, 8)),
                conv("b3", 8, 8, 8),
                conv("c1", 8, 4, 8),
            ],
        )
        .unwrap()
    }

    #[test]
    fn scnn_drops_squeeze_excite_models() {
        let cmp = compare_model(&tiny(), &RunnerOptions::default()).unwrap();
        assert!(cmp.runs[0].is_some(), "DianNao runs");
        assert!(cmp.runs[1].is_none(), "SCNN cannot run squeeze-excite");
        assert!(cmp.runs[4].is_some(), "SmartExchange runs");
        let e = cmp.energies_mj(&EnergyModel::default(), &SeAcceleratorConfig::default());
        assert!(e[0].unwrap() > 0.0);
        assert!(e[1].is_none());
    }

    #[test]
    fn parallel_comparison_is_bit_identical_to_serial() {
        // Worker counts {1, 4, 8} at both levels, on a network with
        // repeated geometries (schedule-cache hits) and an unsupported
        // SCNN lane — all runs must be bit-identical.
        let net = multi_geometry();
        let serial =
            compare_model(&net, &RunnerOptions::default().with_parallelism(1).unwrap()).unwrap();
        assert!(serial.runs[1].is_none(), "SCNN lane must be None");
        for workers in [4usize, 8] {
            let parallel =
                compare_model(&net, &RunnerOptions::default().with_parallelism(workers).unwrap())
                    .unwrap();
            assert_eq!(serial.runs, parallel.runs, "workers = {workers}");
        }
        // Mixed levels: serial generation, parallel simulation.
        let mixed_opts =
            RunnerOptions::default().with_parallelism(1).unwrap().with_sim_parallelism(4).unwrap();
        let mixed = compare_model(&net, &mixed_opts).unwrap();
        assert_eq!(serial.runs, mixed.runs);
    }

    #[test]
    fn compare_pairs_matches_compare_model() {
        let net = multi_geometry();
        let opts = RunnerOptions::default().with_parallelism(2).unwrap();
        let streamed = compare_model(&net, &opts).unwrap();
        let pairs = se_models::traces::trace_pairs(&net, &opts.traces).unwrap();
        let batched = compare_pairs(net.name(), &pairs, &opts).unwrap();
        assert_eq!(streamed.runs, batched.runs);
    }

    #[test]
    fn run_se_model_matches_the_comparison_lane() {
        let net = multi_geometry();
        let opts = RunnerOptions::default().with_parallelism(4).unwrap();
        let cmp = compare_model(&net, &opts).unwrap();
        let se_only = run_se_model(&net, &opts).unwrap();
        assert_eq!(cmp.runs[4].as_ref().unwrap(), &se_only);
    }

    #[test]
    fn cached_runs_are_bit_identical_to_direct_runs() {
        let net = multi_geometry();
        let opts = RunnerOptions::default().with_parallelism(2).unwrap();
        let dir = std::env::temp_dir().join(format!("se-runner-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Cold cache: falls back to the streaming path.
        let direct = compare_model(&net, &opts).unwrap();
        let cold = compare_model_cached(&net, &opts, Some(&dir)).unwrap();
        assert_eq!(direct.runs, cold.runs);

        // Warm cache: write → read → re-simulate must be bit-identical.
        se_models::traces::build_trace_file(&net, &opts.traces, &dir).unwrap();
        let warm = compare_model_cached(&net, &opts, Some(&dir)).unwrap();
        assert_eq!(direct.runs, warm.runs);

        let se_direct = run_se_model(&net, &opts).unwrap();
        let se_warm = run_se_model_cached(&net, &opts, Some(&dir)).unwrap();
        assert_eq!(se_direct, se_warm);
        assert_eq!(&se_warm, warm.runs[4].as_ref().unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn se_beats_diannao_on_energy() {
        let cmp = compare_model(&tiny(), &RunnerOptions::default()).unwrap();
        let em = EnergyModel::default();
        let cfg = SeAcceleratorConfig::default();
        let e = cmp.energies_mj(&em, &cfg);
        assert!(e[4].unwrap() < e[0].unwrap(), "SE {} !< DianNao {}", e[4].unwrap(), e[0].unwrap());
    }

    #[test]
    fn zero_sim_parallelism_is_rejected() {
        assert!(RunnerOptions::default().with_sim_parallelism(0).is_err());
        assert!(RunnerOptions::default().with_parallelism(0).is_err());
    }

    #[test]
    fn compare_models_names_the_failing_model() {
        // A squeeze-excite bottleneck of width 0 passes geometry checks but
        // fails compression during trace generation.
        let good = tiny();
        let bad = NetworkDesc::new(
            "badnet",
            Dataset::Cifar10,
            vec![LayerDesc::new(
                "se0",
                LayerKind::SqueezeExcite { channels: 8, reduced: 0 },
                (8, 8),
            )],
        )
        .unwrap();
        let err = compare_models(&[good, bad], &RunnerOptions::default()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("badnet"), "error must name the failing model: {msg}");
        assert!(!msg.contains("tiny"), "error must not blame a passing model: {msg}");
    }
}
