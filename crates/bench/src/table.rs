//! Plain-text table formatting for the experiment binaries.

/// Renders rows as an aligned text table with a header rule.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let w = widths.get(i).copied().unwrap_or(cell.len());
            line.push_str(&format!("{cell:>w$}"));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a ratio like the paper's figures (`3.4x`).
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Geometric mean of positive values (1.0 for empty input).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|&x| x.max(1e-30).ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render(
            &["model", "CR"],
            &[vec!["VGG19".into(), "80.94".into()], vec!["R".into(), "8".into()]],
        );
        assert!(t.contains("VGG19"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(ratio(3.456), "3.46x");
        assert_eq!(pct(0.5), "50.0%");
    }
}
