//! Minimal JSON emit + parse for the machine-readable benchmark reports
//! (`BENCH_serve.json`). Hand-rolled on purpose: the workspace vendors no
//! serialization crates, and the subset needed here — objects with stable
//! key order, arrays, strings, numbers, booleans, null — is small enough
//! to own. The emitter and parser round-trip each other, which is how the
//! bench driver self-validates the file it just wrote.

use crate::Result;

/// A JSON value. Objects preserve insertion order so emitted reports are
/// stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (emitted via Rust's shortest-roundtrip `f64` display).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent, trailing
    /// newline) — the on-disk format of `BENCH_serve.json`.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.render_into(&mut s, 0);
        s.push('\n');
        s
    }

    fn render_into(&self, s: &mut String, indent: usize) {
        match self {
            Json::Null => s.push_str("null"),
            Json::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_number(*n, s),
            Json::Str(text) => render_string(text, s),
            Json::Arr(items) if items.is_empty() => s.push_str("[]"),
            Json::Arr(items) => {
                s.push('[');
                for (i, item) in items.iter().enumerate() {
                    s.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(s, indent + 1);
                    item.render_into(s, indent + 1);
                }
                s.push('\n');
                push_indent(s, indent);
                s.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => s.push_str("{}"),
            Json::Obj(fields) => {
                s.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    s.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(s, indent + 1);
                    render_string(key, s);
                    s.push_str(": ");
                    value.render_into(s, indent + 1);
                }
                s.push('\n');
                push_indent(s, indent);
                s.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset the emitter produces, which is
    /// ordinary JSON without exponent-free oddities).
    ///
    /// # Errors
    ///
    /// Fails on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}").into());
        }
        Ok(value)
    }
}

fn push_indent(s: &mut String, indent: usize) {
    for _ in 0..indent {
        s.push_str("  ");
    }
}

fn render_number(n: f64, s: &mut String) {
    if n.is_finite() {
        // Shortest-roundtrip display: integers print bare (`5`, not `5.0`).
        s.push_str(&format!("{n}"));
    } else {
        s.push_str("null");
    }
}

fn render_string(text: &str, s: &mut String) {
    s.push('"');
    for c in text.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<()> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}").into())
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                if !items.is_empty() {
                    expect(bytes, pos, ",")?;
                }
                items.push(parse_value(bytes, pos)?);
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Json::Obj(fields));
                }
                if !fields.is_empty() {
                    expect(bytes, pos, ",")?;
                    skip_ws(bytes, pos);
                }
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                fields.push((key, parse_value(bytes, pos)?));
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    expect(bytes, pos, "\"")?;
    let mut out = String::new();
    let mut chars = std::str::from_utf8(&bytes[*pos..])
        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?
        .char_indices();
    while let Some((offset, c)) = chars.next() {
        match c {
            '"' => {
                *pos += offset + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 'u')) => {
                    let hex_at = *pos + offset + 2;
                    let hex = bytes
                        .get(hex_at..hex_at + 4)
                        .and_then(|h| std::str::from_utf8(h).ok())
                        .ok_or("truncated \\u escape")?;
                    let code = u32::from_str_radix(hex, 16).map_err(|e| format!("\\u: {e}"))?;
                    out.push(char::from_u32(code).ok_or("\\u escape outside the BMP")?);
                    for _ in 0..4 {
                        chars.next();
                    }
                }
                other => return Err(format!("unsupported escape {other:?}").into()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("invalid number at byte {start}").into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: &[(&str, Json)]) -> Json {
        Json::Obj(fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect())
    }

    #[test]
    fn render_parse_round_trip() {
        let doc = obj(&[
            ("bench", Json::Str("serve".into())),
            ("schema_version", Json::Num(1.0)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            ("p99_ms", Json::Num(0.1875)),
            (
                "configs",
                Json::Arr(vec![
                    obj(&[("runtime", Json::Str("sim".into())), ("workers", Json::Null)]),
                    obj(&[("runtime", Json::Str("staged".into())), ("workers", Json::Num(4.0))]),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("quoted", Json::Str("a \"b\"\nc\\d".into())),
        ]);
        let text = doc.render();
        assert!(text.ends_with('\n'));
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Integers render bare, keys keep insertion order.
        assert!(text.contains("\"schema_version\": 1,"), "{text}");
        let bench_pos = text.find("\"bench\"").unwrap();
        assert!(bench_pos < text.find("\"configs\"").unwrap());
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let doc = Json::parse(r#"{"a": [1, 2.5, "x", false], "b": {"c": null}}"#).unwrap();
        let items = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_str(), Some("x"));
        assert_eq!(items[3].as_bool(), Some(false));
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(doc.get("nope"), None);
    }

    #[test]
    fn malformed_documents_are_rejected_loudly() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "nul", "1 2", "[1] trailing"] {
            assert!(Json::parse(bad).is_err(), "must reject {bad:?}");
        }
    }
}
