//! Minimal CLI-flag reading for the experiment binaries.

use crate::runner::RunnerOptions;
use crate::Result;

/// Parsed common flags.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Flags {
    /// `--fast`: sample output rows and cut decomposition iterations so the
    /// ImageNet-scale sweeps finish quickly (shapes are preserved; absolute
    /// numbers move by a few percent).
    pub fast: bool,
    /// `--seed N`: base seed for synthetic weights/activations.
    pub seed: u64,
    /// `--models a,b,c`: restrict to a subset of model names.
    pub models: Option<Vec<String>>,
    /// `--sim-parallelism N`: worker threads for the `(layer, accelerator)`
    /// simulation grid (see `se_bench::runner`). Results are bit-identical
    /// for every value; absent means the default (the `SE_PARALLELISM`
    /// environment variable, else all cores).
    pub sim_parallelism: Option<usize>,
    /// `--traces-dir DIR`: directory of persisted trace artifacts
    /// (`*.setrace`, built by `se trace build`). Subcommands that consume
    /// traces replay matching artifacts from here instead of regenerating
    /// the decompositions; cached and direct runs are bit-identical. A
    /// missing artifact silently falls back to direct generation.
    pub traces_dir: Option<std::path::PathBuf>,
    /// `--with-fc`: include FC layers in the generated traces (the
    /// Fig. 13(b) protocol) — consumed by `se trace build`.
    pub with_fc: bool,
    /// `--batch-sizes 1,4,16`: batch sizes swept by `se batch`.
    pub batch_sizes: Option<Vec<usize>>,
    /// `--max-batch N`: maximum images per batch for `se serve`'s
    /// aggregator.
    pub max_batch: Option<usize>,
    /// `--max-wait-us F`: maximum microseconds the oldest queued request
    /// waits before `se serve`'s aggregator closes the batch short.
    pub max_wait_us: Option<f64>,
    /// `--arrival uniform|burst|closed`: `se serve` workload shape.
    pub arrival: Option<String>,
    /// `--requests N`: total requests issued by the `se serve` workload.
    pub requests: Option<usize>,
    /// `--rate F`: open-loop arrival rate in requests per second (default:
    /// derived from the model's single-image service rate).
    pub rate: Option<f64>,
    /// `--queue-cap N`: bounded request-queue capacity for `se serve`.
    pub queue_cap: Option<usize>,
    /// `--concurrency N`: closed-loop clients for `--arrival closed`.
    pub concurrency: Option<usize>,
    /// `--burst N`: requests per burst for `--arrival burst`.
    pub burst: Option<usize>,
    /// `--instances N`: accelerator instances behind `se cluster`'s shared
    /// front.
    pub instances: Option<usize>,
    /// `--router rr|jsq|affinity`: `se cluster` routing policy.
    pub router: Option<String>,
    /// `--deadline-us F`: per-request deadline in microseconds (`se serve`
    /// reports misses against it; `se cluster` schedules EDF with it).
    /// Absent = best effort.
    pub deadline_us: Option<f64>,
    /// `--buffer-kb F`: per-instance weight-buffer capacity in KB for
    /// `se cluster`'s residency model. Absent = residency modeling off
    /// (weights streamed per batch).
    pub buffer_kb: Option<f64>,
    /// `--runtime sim|staged`: serving back end for `se serve` /
    /// `se cluster`. `sim` (the default) is the serial discrete-event
    /// simulation; `staged` runs the concurrent staged pipeline, whose
    /// per-request outcomes are bit-identical to the sim's.
    pub runtime: Option<String>,
    /// `--exec-workers N`: execution-pool threads for the staged runtime.
    /// Absent means host-sized (the `SE_PARALLELISM` environment variable,
    /// else all cores). Outcomes never depend on this value.
    pub exec_workers: Option<usize>,
    /// `--workers 1,4,8`: execution-worker counts swept by
    /// `se bench serve`.
    pub workers: Option<Vec<usize>>,
    /// `--bench-out FILE`: where `se bench serve` writes its
    /// machine-readable JSON report (default `BENCH_serve.json`).
    pub bench_out: Option<std::path::PathBuf>,
    /// `--kill i@t_us`: scripted instance kills for `se cluster`
    /// (repeatable; comma-separated specs). Raw specs, parsed and
    /// validated by [`Flags::fault_plan`].
    pub kill: Vec<String>,
    /// `--restart i@t_us`: scripted instance restarts for `se cluster`
    /// (repeatable; comma-separated specs). A restarted instance rejoins
    /// with an empty queue and a cold weight buffer.
    pub restart: Vec<String>,
    /// `--autoscale hi:lo`: queue-depth autoscaling thresholds for
    /// `se cluster` (spawn above `hi` waiting requests per accepting
    /// instance, drain below `lo`).
    pub autoscale: Option<String>,
    /// `--tiers name:CAP:BW,...`: per-instance tiered weight store for
    /// `se cluster` (top tier first, e.g.
    /// `buf:64kb:16,dram:4mb:8,ssd:2gb:1`). Capacities take `kb`/`mb`/
    /// `gb` suffixes (plain numbers are bytes), bandwidths are bytes per
    /// cycle. Raw string here; parsed and validated loudly by
    /// [`Flags::tier_specs`]. Mutually exclusive with `--buffer-kb`.
    pub tiers: Option<String>,
    /// `--trace-out FILE`: write the run's virtual-time scheduling trace
    /// as Chrome-trace/Perfetto `traceEvents` JSON (`se serve`,
    /// `se cluster`, `se bench serve`). The file is byte-identical across
    /// `--sim-parallelism` values and `--runtime sim|staged`.
    pub trace_out: Option<std::path::PathBuf>,
    /// `--metrics-out FILE`: write the run's folded counters, gauges, and
    /// latency histograms as Prometheus-style text exposition.
    pub metrics_out: Option<std::path::PathBuf>,
    /// `--window-us F`: analysis window width in microseconds for
    /// `se obs` (default 200). Converted to cycles at the accelerator
    /// frequency; every windowed aggregate covers `[k·W, (k+1)·W)`.
    pub window_us: Option<f64>,
}

/// Serving back end selected by `--runtime` (see
/// [`Flags::runtime_kind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeKind {
    /// The serial discrete-event simulation (the oracle).
    #[default]
    Sim,
    /// The concurrent staged pipeline (same outcomes, real threads).
    Staged,
}

/// Every flag that consumes the next argument as its value — the single
/// inventory shared by the parser below (a flag not listed here
/// structurally cannot take a value) and by `se trace`'s positional-action
/// scan, which must skip flag values when looking for `build`/`info`.
pub const VALUE_FLAGS: &[&str] = &[
    "--seed",
    "--models",
    "--sim-parallelism",
    "--traces-dir",
    "--batch-sizes",
    "--max-batch",
    "--max-wait-us",
    "--arrival",
    "--requests",
    "--rate",
    "--burst",
    "--queue-cap",
    "--concurrency",
    "--instances",
    "--router",
    "--deadline-us",
    "--buffer-kb",
    "--runtime",
    "--exec-workers",
    "--workers",
    "--bench-out",
    "--kill",
    "--restart",
    "--autoscale",
    "--tiers",
    "--trace-out",
    "--metrics-out",
    "--window-us",
];

impl Flags {
    /// Parses flags from `std::env::args`, ignoring unknown arguments.
    pub fn parse() -> Flags {
        Flags::from_args(std::env::args().skip(1))
    }

    /// Parses flags from an explicit argument list (testable core of
    /// [`Flags::parse`]).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Flags {
        let args: Vec<String> = args.into_iter().collect();
        let mut flags = Flags::default();
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_str();
            if VALUE_FLAGS.contains(&arg) {
                // A value flag with no value left is ignored, like any
                // unknown argument.
                if let Some(value) = args.get(i + 1) {
                    flags.apply_value(arg, value);
                    i += 1;
                }
            } else {
                match arg {
                    "--fast" => flags.fast = true,
                    "--with-fc" => flags.with_fc = true,
                    _ => {}
                }
            }
            i += 1;
        }
        flags
    }

    /// Applies one value-taking flag (listed in [`VALUE_FLAGS`]) to the
    /// parsed set; degenerate values (zero sizes, negative rates,
    /// non-numerics) leave the field at its default.
    fn apply_value(&mut self, flag: &str, value: &str) {
        match flag {
            "--seed" => self.seed = value.parse().unwrap_or(0),
            "--models" => {
                self.models = Some(value.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--sim-parallelism" => self.sim_parallelism = value.parse().ok().filter(|&n| n >= 1),
            "--traces-dir" => self.traces_dir = Some(std::path::PathBuf::from(value)),
            "--batch-sizes" => {
                let sizes: Vec<usize> = value
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .filter(|&n| n >= 1)
                    .collect();
                self.batch_sizes = Some(sizes).filter(|v| !v.is_empty());
            }
            "--max-batch" => self.max_batch = value.parse().ok().filter(|&n| n >= 1),
            "--max-wait-us" => self.max_wait_us = value.parse().ok().filter(|&w: &f64| w >= 0.0),
            "--arrival" => self.arrival = Some(value.to_string()),
            "--requests" => self.requests = value.parse().ok().filter(|&n| n >= 1),
            "--rate" => self.rate = value.parse().ok().filter(|&r: &f64| r > 0.0),
            "--queue-cap" => self.queue_cap = value.parse().ok().filter(|&n| n >= 1),
            "--concurrency" => self.concurrency = value.parse().ok().filter(|&n| n >= 1),
            "--burst" => self.burst = value.parse().ok().filter(|&n| n >= 1),
            "--instances" => self.instances = value.parse().ok().filter(|&n| n >= 1),
            "--router" => self.router = Some(value.to_string()),
            "--deadline-us" => {
                self.deadline_us = value.parse().ok().filter(|&d: &f64| d > 0.0);
            }
            "--buffer-kb" => self.buffer_kb = value.parse().ok().filter(|&b: &f64| b > 0.0),
            "--runtime" => self.runtime = Some(value.to_string()),
            "--exec-workers" => self.exec_workers = value.parse().ok().filter(|&n| n >= 1),
            "--workers" => {
                let counts: Vec<usize> = value
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .filter(|&n| n >= 1)
                    .collect();
                self.workers = Some(counts).filter(|v| !v.is_empty());
            }
            "--bench-out" => self.bench_out = Some(std::path::PathBuf::from(value)),
            // Kill/restart specs accumulate across repeats and commas;
            // they stay raw strings here and are parsed loudly by
            // `fault_plan` (a malformed spec must error, not vanish).
            "--kill" => self.kill.extend(value.split(',').map(|s| s.trim().to_string())),
            "--restart" => self.restart.extend(value.split(',').map(|s| s.trim().to_string())),
            "--autoscale" => self.autoscale = Some(value.to_string()),
            "--tiers" => self.tiers = Some(value.to_string()),
            "--trace-out" => self.trace_out = Some(std::path::PathBuf::from(value)),
            "--metrics-out" => self.metrics_out = Some(std::path::PathBuf::from(value)),
            "--window-us" => self.window_us = value.parse().ok().filter(|&w: &f64| w > 0.0),
            other => unreachable!("VALUE_FLAGS entry {other} not handled"),
        }
    }

    /// Whether `name` is selected by `--models` (everything is when the
    /// flag is absent).
    pub fn selects(&self, name: &str) -> bool {
        match &self.models {
            None => true,
            Some(list) => list.iter().any(|m| m.eq_ignore_ascii_case(name)),
        }
    }

    /// Resolves `--runtime` to a [`RuntimeKind`], defaulting to the sim.
    ///
    /// # Errors
    ///
    /// Rejects an unknown runtime name, and rejects `--exec-workers` when
    /// the sim runtime is (explicitly or implicitly) selected — the sim
    /// has no execution pool, so the flag would silently do nothing.
    /// (The sim's *modeled* parallelism is `--sim-parallelism`, and the
    /// two must not be conflated.)
    pub fn runtime_kind(&self) -> Result<RuntimeKind> {
        let kind = match self.runtime.as_deref() {
            None | Some("sim") => RuntimeKind::Sim,
            Some("staged") => RuntimeKind::Staged,
            Some(other) => {
                return Err(format!("unknown runtime {other:?} (expected sim|staged)").into());
            }
        };
        if kind == RuntimeKind::Sim && self.exec_workers.is_some() {
            return Err("--exec-workers only applies to --runtime staged \
                        (the sim has no execution pool; its worker count for \
                        trace generation is --sim-parallelism / SE_PARALLELISM)"
                .into());
        }
        Ok(kind)
    }

    /// Whether any fault-injection flag (`--kill`, `--restart`,
    /// `--autoscale`) was given. Subcommands without a fault model use
    /// this to reject the flags loudly instead of silently ignoring them.
    pub fn has_fault_flags(&self) -> bool {
        !self.kill.is_empty() || !self.restart.is_empty() || self.autoscale.is_some()
    }

    /// The fault plan described by `--kill` / `--restart` / `--autoscale`,
    /// with event times converted from microseconds to cycles at
    /// `frequency_hz`. Events are ordered by `(time, instance)`; the
    /// per-instance kill/restart alternation and instance bounds are
    /// checked later by `ClusterSpec::validate`, which knows the instance
    /// count.
    ///
    /// # Errors
    ///
    /// Rejects malformed specs: `--kill`/`--restart` values must be
    /// `instance@t_us` with a non-negative time, `--autoscale` must be
    /// `hi:lo` with `hi >= 1` and `hi > lo`.
    pub fn fault_plan(&self, frequency_hz: f64) -> Result<se_serve::FaultPlan> {
        let event = |spec: &str, action: se_serve::FaultAction| -> Result<se_serve::FaultEvent> {
            let flag = match action {
                se_serve::FaultAction::Kill => "--kill",
                se_serve::FaultAction::Restart => "--restart",
            };
            let (inst, t_us) = spec
                .split_once('@')
                .ok_or_else(|| format!("{flag} {spec:?}: expected instance@t_us (e.g. 1@500)"))?;
            let instance: usize = inst
                .parse()
                .map_err(|_| format!("{flag} {spec:?}: instance must be a non-negative integer"))?;
            let t_us: f64 =
                t_us.parse().ok().filter(|t: &f64| t.is_finite() && *t >= 0.0).ok_or_else(
                    || format!("{flag} {spec:?}: time must be non-negative microseconds"),
                )?;
            Ok(se_serve::FaultEvent {
                at: (t_us * 1e-6 * frequency_hz).round() as u64,
                instance,
                action,
            })
        };
        let mut events = Vec::with_capacity(self.kill.len() + self.restart.len());
        for spec in &self.kill {
            events.push(event(spec, se_serve::FaultAction::Kill)?);
        }
        for spec in &self.restart {
            events.push(event(spec, se_serve::FaultAction::Restart)?);
        }
        events.sort_unstable_by_key(|e| (e.at, e.instance));
        let autoscale = match self.autoscale.as_deref() {
            None => None,
            Some(raw) => {
                let parsed = raw.split_once(':').and_then(|(hi, lo)| {
                    Some(se_serve::AutoscalePolicy {
                        spawn_above: hi.parse().ok()?,
                        drain_below: lo.parse().ok()?,
                    })
                });
                let policy = parsed
                    .filter(|p| p.spawn_above >= 1 && p.spawn_above > p.drain_below)
                    .ok_or_else(|| {
                        format!("--autoscale {raw:?}: expected hi:lo with hi >= 1 and hi > lo")
                    })?;
                Some(policy)
            }
        };
        Ok(se_serve::FaultPlan { events, autoscale })
    }

    /// The tier stack described by `--tiers`: comma-separated
    /// `name:CAP:BW` triples, top (on-chip) tier first. `CAP` takes
    /// `kb`/`mb`/`gb` suffixes (a bare number is bytes) and `BW` is
    /// bytes per cycle. Returns `Ok(None)` when the flag is absent —
    /// the single-buffer default stays bit-identical.
    ///
    /// # Errors
    ///
    /// Rejects malformed triples, non-positive capacities or
    /// bandwidths, fewer than two tiers (a one-tier "stack" is exactly
    /// `--buffer-kb`), and combining `--tiers` with `--buffer-kb`.
    pub fn tier_specs(&self) -> Result<Option<Vec<se_serve::TierSpec>>> {
        let Some(raw) = self.tiers.as_deref() else {
            return Ok(None);
        };
        if self.buffer_kb.is_some() {
            return Err("--tiers replaces --buffer-kb (the stack's top tier is the weight \
                        buffer); give one or the other"
                .into());
        }
        let capacity = |spec: &str, field: &str| -> Result<u64> {
            let lower = field.to_ascii_lowercase();
            let (digits, scale) = match lower {
                _ if lower.ends_with("kb") => (&lower[..lower.len() - 2], 1024.0),
                _ if lower.ends_with("mb") => (&lower[..lower.len() - 2], 1024.0 * 1024.0),
                _ if lower.ends_with("gb") => (&lower[..lower.len() - 2], 1024.0 * 1024.0 * 1024.0),
                _ => (&lower[..], 1.0),
            };
            let value: f64 =
                digits.parse().ok().filter(|v: &f64| v.is_finite() && *v > 0.0).ok_or_else(
                    || {
                        format!(
                            "--tiers {spec:?}: capacity {field:?} must be a positive number of \
                         bytes with an optional kb/mb/gb suffix"
                        )
                    },
                )?;
            Ok((value * scale).round() as u64)
        };
        let mut specs = Vec::new();
        for part in raw.split(',') {
            let part = part.trim();
            let mut fields = part.split(':');
            let (name, cap, bw) = match (fields.next(), fields.next(), fields.next(), fields.next())
            {
                (Some(name), Some(cap), Some(bw), None) => (name, cap, bw),
                _ => {
                    return Err(format!(
                        "--tiers {part:?}: expected name:capacity:bytes_per_cycle \
                         (e.g. buf:64kb:16)"
                    )
                    .into());
                }
            };
            if name.is_empty() {
                return Err(format!("--tiers {part:?}: tier name must be non-empty").into());
            }
            let bytes_per_cycle: f64 =
                bw.parse().ok().filter(|b: &f64| b.is_finite() && *b > 0.0).ok_or_else(|| {
                    format!("--tiers {part:?}: bandwidth {bw:?} must be positive bytes per cycle")
                })?;
            specs.push(se_serve::TierSpec::new(name, capacity(part, cap)?, bytes_per_cycle));
        }
        if specs.len() < 2 {
            return Err("--tiers needs at least two tiers (top buffer + a backing tier); a \
                        single-tier stack is exactly --buffer-kb"
                .into());
        }
        Ok(Some(specs))
    }

    /// The staged-runtime config these flags describe: `--exec-workers`
    /// if given, else host-sized (`SE_PARALLELISM`, else all cores).
    pub fn staged_config(&self) -> se_serve::StagedConfig {
        let mut cfg = se_serve::StagedConfig::host_sized();
        if let Some(n) = self.exec_workers {
            cfg.exec_workers = n;
        }
        cfg
    }

    /// Builds the comparison-runner options these flags describe: the
    /// `--fast` profile, the `--seed`, and `--sim-parallelism` applied on
    /// top of the defaults — the shared entry point of the per-figure
    /// binaries.
    ///
    /// # Errors
    ///
    /// Propagates invalid parallelism configuration.
    pub fn runner_options(&self) -> Result<RunnerOptions> {
        let mut opts = if self.fast { RunnerOptions::fast() } else { RunnerOptions::default() };
        opts.traces = opts.traces.with_seed(self.seed);
        if let Some(n) = self.sim_parallelism {
            opts = opts.with_sim_parallelism(n)?;
        }
        Ok(opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Flags {
        Flags::from_args(args.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn default_selects_everything() {
        let f = Flags::default();
        assert!(f.selects("VGG11"));
        assert!(!f.fast);
        assert!(f.sim_parallelism.is_none());
    }

    #[test]
    fn model_filter_is_case_insensitive() {
        let f = Flags { models: Some(vec!["vgg11".into()]), ..Flags::default() };
        assert!(f.selects("VGG11"));
        assert!(!f.selects("ResNet50"));
    }

    #[test]
    fn sim_parallelism_parses_and_rejects_zero() {
        assert_eq!(parse(&["--sim-parallelism", "4"]).sim_parallelism, Some(4));
        assert_eq!(parse(&["--sim-parallelism", "0"]).sim_parallelism, None);
        assert_eq!(parse(&["--sim-parallelism"]).sim_parallelism, None);
        assert_eq!(parse(&["--fast", "--sim-parallelism", "2"]).sim_parallelism, Some(2));
    }

    #[test]
    fn traces_dir_and_with_fc_parse() {
        let f = parse(&["--traces-dir", "/tmp/t", "--with-fc"]);
        assert_eq!(f.traces_dir.as_deref(), Some(std::path::Path::new("/tmp/t")));
        assert!(f.with_fc);
        let f = parse(&["--traces-dir"]); // missing value: ignored
        assert!(f.traces_dir.is_none());
        assert!(!f.with_fc);
    }

    #[test]
    fn serving_flags_parse_and_reject_degenerates() {
        let f = parse(&[
            "--batch-sizes",
            "1,4,16",
            "--max-batch",
            "8",
            "--max-wait-us",
            "25.5",
            "--arrival",
            "burst",
            "--burst",
            "4",
            "--requests",
            "100",
            "--rate",
            "5000",
            "--queue-cap",
            "32",
            "--concurrency",
            "6",
        ]);
        assert_eq!(f.batch_sizes, Some(vec![1, 4, 16]));
        assert_eq!(f.max_batch, Some(8));
        assert_eq!(f.max_wait_us, Some(25.5));
        assert_eq!(f.arrival.as_deref(), Some("burst"));
        assert_eq!(f.burst, Some(4));
        assert_eq!(f.requests, Some(100));
        assert_eq!(f.rate, Some(5000.0));
        assert_eq!(f.queue_cap, Some(32));
        assert_eq!(f.concurrency, Some(6));
        assert_eq!(parse(&["--batch-sizes", "a,b"]).batch_sizes, None);
        assert_eq!(parse(&["--max-batch", "0"]).max_batch, None);
        assert_eq!(parse(&["--rate", "-1"]).rate, None);
        assert_eq!(parse(&["--queue-cap"]).queue_cap, None);
    }

    #[test]
    fn cluster_flags_parse_and_reject_degenerates() {
        let f = parse(&[
            "--instances",
            "4",
            "--router",
            "affinity",
            "--deadline-us",
            "500",
            "--buffer-kb",
            "256.5",
        ]);
        assert_eq!(f.instances, Some(4));
        assert_eq!(f.router.as_deref(), Some("affinity"));
        assert_eq!(f.deadline_us, Some(500.0));
        assert_eq!(f.buffer_kb, Some(256.5));
        assert_eq!(parse(&["--instances", "0"]).instances, None);
        assert_eq!(parse(&["--deadline-us", "-3"]).deadline_us, None);
        assert_eq!(parse(&["--buffer-kb", "0"]).buffer_kb, None);
        assert_eq!(parse(&["--router"]).router, None);
    }

    #[test]
    fn runtime_flags_parse_and_resolve() {
        assert_eq!(parse(&[]).runtime_kind().unwrap(), RuntimeKind::Sim);
        assert_eq!(parse(&["--runtime", "sim"]).runtime_kind().unwrap(), RuntimeKind::Sim);
        assert_eq!(parse(&["--runtime", "staged"]).runtime_kind().unwrap(), RuntimeKind::Staged);
        let err = parse(&["--runtime", "threads"]).runtime_kind().unwrap_err();
        assert!(err.to_string().contains("sim|staged"), "{err}");
        let f = parse(&["--runtime", "staged", "--exec-workers", "3"]);
        assert_eq!(f.runtime_kind().unwrap(), RuntimeKind::Staged);
        assert_eq!(f.staged_config().exec_workers, 3);
        assert_eq!(parse(&["--exec-workers", "0"]).exec_workers, None);
        assert_eq!(parse(&["--workers", "1,4,8"]).workers, Some(vec![1, 4, 8]));
        assert_eq!(parse(&["--workers", "0"]).workers, None);
        assert_eq!(
            parse(&["--bench-out", "/tmp/b.json"]).bench_out.as_deref(),
            Some(std::path::Path::new("/tmp/b.json"))
        );
    }

    #[test]
    fn observability_flags_parse() {
        let f = parse(&["--trace-out", "/tmp/t.json", "--metrics-out", "/tmp/m.prom"]);
        assert_eq!(f.trace_out.as_deref(), Some(std::path::Path::new("/tmp/t.json")));
        assert_eq!(f.metrics_out.as_deref(), Some(std::path::Path::new("/tmp/m.prom")));
        let f = parse(&["--trace-out"]); // missing value: ignored
        assert!(f.trace_out.is_none());
        assert!(Flags::default().metrics_out.is_none());
        assert_eq!(parse(&["--window-us", "250.5"]).window_us, Some(250.5));
        assert_eq!(parse(&["--window-us", "0"]).window_us, None);
        assert_eq!(parse(&["--window-us", "-4"]).window_us, None);
        assert_eq!(Flags::default().window_us, None);
    }

    #[test]
    fn exec_workers_with_sim_runtime_errors_loudly() {
        for args in [&["--exec-workers", "4"][..], &["--runtime", "sim", "--exec-workers", "4"]] {
            let err = parse(args).runtime_kind().unwrap_err();
            assert!(err.to_string().contains("--sim-parallelism"), "{err}");
        }
    }

    #[test]
    fn fault_flags_accumulate_and_parse_into_a_plan() {
        use se_serve::FaultAction;
        let f = parse(&["--kill", "0@10,1@20", "--restart", "0@50", "--kill", "2@30"]);
        assert_eq!(f.kill, vec!["0@10", "1@20", "2@30"]);
        assert_eq!(f.restart, vec!["0@50"]);
        assert!(f.has_fault_flags());
        assert!(!Flags::default().has_fault_flags());
        // 1 MHz: t_us == cycles, ordered by (at, instance).
        let plan = f.fault_plan(1e6).unwrap();
        let shape: Vec<(u64, usize, FaultAction)> =
            plan.events.iter().map(|e| (e.at, e.instance, e.action)).collect();
        assert_eq!(
            shape,
            vec![
                (10, 0, FaultAction::Kill),
                (20, 1, FaultAction::Kill),
                (30, 2, FaultAction::Kill),
                (50, 0, FaultAction::Restart),
            ]
        );
        assert!(plan.autoscale.is_none());
        // Autoscale thresholds parse and are ordered.
        let auto = parse(&["--autoscale", "8:2"]).fault_plan(1e6).unwrap();
        let policy = auto.autoscale.unwrap();
        assert_eq!((policy.spawn_above, policy.drain_below), (8, 2));
        assert!(auto.events.is_empty());
    }

    #[test]
    fn malformed_fault_specs_error_loudly() {
        for args in [
            &["--kill", "nope"][..],
            &["--kill", "0@-5"],
            &["--kill", "x@10"],
            &["--restart", "1"],
            &["--autoscale", "2"],
            &["--autoscale", "2:2"],
            &["--autoscale", "0:0"],
        ] {
            let err = parse(args).fault_plan(1e9).unwrap_err();
            assert!(
                err.to_string().contains(args[0]),
                "error for {args:?} should name the flag: {err}"
            );
        }
    }

    #[test]
    fn tier_specs_parse_suffixes_and_order() {
        let f = parse(&["--tiers", "buf:64kb:16,dram:4mb:8,ssd:2gb:1"]);
        let tiers = f.tier_specs().unwrap().unwrap();
        assert_eq!(tiers.len(), 3);
        assert_eq!(tiers[0].name, "buf");
        assert_eq!(tiers[0].capacity_bytes, 64 * 1024);
        assert_eq!(tiers[0].bytes_per_cycle, 16.0);
        assert_eq!(tiers[1].capacity_bytes, 4 * 1024 * 1024);
        assert_eq!(tiers[2].name, "ssd");
        assert_eq!(tiers[2].capacity_bytes, 2 * 1024 * 1024 * 1024);
        assert_eq!(tiers[2].bytes_per_cycle, 1.0);
        // Bare numbers are bytes; fractional capacities round.
        let f = parse(&["--tiers", "a:1000:2,b:1.5kb:0.5"]);
        let tiers = f.tier_specs().unwrap().unwrap();
        assert_eq!(tiers[0].capacity_bytes, 1000);
        assert_eq!(tiers[1].capacity_bytes, 1536);
        assert_eq!(tiers[1].bytes_per_cycle, 0.5);
        // Absent flag: None, not an error.
        assert_eq!(Flags::default().tier_specs().unwrap(), None);
    }

    #[test]
    fn malformed_tier_specs_error_loudly() {
        for args in [
            &["--tiers", "buf:64kb:16"][..],           // one tier
            &["--tiers", "buf:64kb"],                  // missing bandwidth
            &["--tiers", "buf:64kb:16:extra,d:1mb:1"], // too many fields
            &["--tiers", ":64kb:16,d:1mb:1"],          // empty name
            &["--tiers", "buf:0:16,d:1mb:1"],          // zero capacity
            &["--tiers", "buf:64xb:16,d:1mb:1"],       // bad suffix
            &["--tiers", "buf:64kb:0,d:1mb:1"],        // zero bandwidth
            &["--tiers", "buf:64kb:nan,d:1mb:1"],      // non-finite bandwidth
        ] {
            let err = parse(args).tier_specs().unwrap_err();
            assert!(err.to_string().contains("--tiers"), "error for {args:?}: {err}");
        }
        let err = parse(&["--tiers", "buf:64kb:16,d:1mb:1", "--buffer-kb", "64"])
            .tier_specs()
            .unwrap_err();
        assert!(err.to_string().contains("--buffer-kb"), "{err}");
    }

    #[test]
    fn runner_options_apply_all_flags() {
        let f = parse(&["--fast", "--seed", "7", "--sim-parallelism", "3"]);
        let opts = f.runner_options().unwrap();
        assert_eq!(opts.se_cfg.row_sample, 4, "--fast samples output rows");
        assert_eq!(opts.traces.base_seed, 7);
        assert_eq!(opts.sim_parallelism, 3);
        let plain = Flags::default().runner_options().unwrap();
        assert_eq!(plain.se_cfg.row_sample, 1);
    }
}
