//! Minimal CLI-flag reading for the experiment binaries.

/// Parsed common flags.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Flags {
    /// `--fast`: sample output rows and cut decomposition iterations so the
    /// ImageNet-scale sweeps finish quickly (shapes are preserved; absolute
    /// numbers move by a few percent).
    pub fast: bool,
    /// `--seed N`: base seed for synthetic weights/activations.
    pub seed: u64,
    /// `--models a,b,c`: restrict to a subset of model names.
    pub models: Option<Vec<String>>,
}

impl Flags {
    /// Parses flags from `std::env::args`, ignoring unknown arguments.
    pub fn parse() -> Flags {
        let mut flags = Flags::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--fast" => flags.fast = true,
                "--seed" if i + 1 < args.len() => {
                    flags.seed = args[i + 1].parse().unwrap_or(0);
                    i += 1;
                }
                "--models" if i + 1 < args.len() => {
                    flags.models =
                        Some(args[i + 1].split(',').map(|s| s.trim().to_string()).collect());
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        flags
    }

    /// Whether `name` is selected by `--models` (everything is when the
    /// flag is absent).
    pub fn selects(&self, name: &str) -> bool {
        match &self.models {
            None => true,
            Some(list) => list.iter().any(|m| m.eq_ignore_ascii_case(name)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_selects_everything() {
        let f = Flags::default();
        assert!(f.selects("VGG11"));
        assert!(!f.fast);
    }

    #[test]
    fn model_filter_is_case_insensitive() {
        let f = Flags { models: Some(vec!["vgg11".into()]), ..Flags::default() };
        assert!(f.selects("VGG11"));
        assert!(!f.selects("ResNet50"));
    }
}
