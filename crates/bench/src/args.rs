//! Minimal CLI-flag reading for the experiment binaries.

use crate::runner::RunnerOptions;
use crate::Result;

/// Parsed common flags.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Flags {
    /// `--fast`: sample output rows and cut decomposition iterations so the
    /// ImageNet-scale sweeps finish quickly (shapes are preserved; absolute
    /// numbers move by a few percent).
    pub fast: bool,
    /// `--seed N`: base seed for synthetic weights/activations.
    pub seed: u64,
    /// `--models a,b,c`: restrict to a subset of model names.
    pub models: Option<Vec<String>>,
    /// `--sim-parallelism N`: worker threads for the `(layer, accelerator)`
    /// simulation grid (see `se_bench::runner`). Results are bit-identical
    /// for every value; absent means the default (the `SE_PARALLELISM`
    /// environment variable, else all cores).
    pub sim_parallelism: Option<usize>,
    /// `--traces-dir DIR`: directory of persisted trace artifacts
    /// (`*.setrace`, built by `se trace build`). Subcommands that consume
    /// traces replay matching artifacts from here instead of regenerating
    /// the decompositions; cached and direct runs are bit-identical. A
    /// missing artifact silently falls back to direct generation.
    pub traces_dir: Option<std::path::PathBuf>,
    /// `--with-fc`: include FC layers in the generated traces (the
    /// Fig. 13(b) protocol) — consumed by `se trace build`.
    pub with_fc: bool,
}

impl Flags {
    /// Parses flags from `std::env::args`, ignoring unknown arguments.
    pub fn parse() -> Flags {
        Flags::from_args(std::env::args().skip(1))
    }

    /// Parses flags from an explicit argument list (testable core of
    /// [`Flags::parse`]).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Flags {
        let args: Vec<String> = args.into_iter().collect();
        let mut flags = Flags::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--fast" => flags.fast = true,
                "--seed" if i + 1 < args.len() => {
                    flags.seed = args[i + 1].parse().unwrap_or(0);
                    i += 1;
                }
                "--models" if i + 1 < args.len() => {
                    flags.models =
                        Some(args[i + 1].split(',').map(|s| s.trim().to_string()).collect());
                    i += 1;
                }
                "--sim-parallelism" if i + 1 < args.len() => {
                    flags.sim_parallelism = args[i + 1].parse().ok().filter(|&n| n >= 1);
                    i += 1;
                }
                "--traces-dir" if i + 1 < args.len() => {
                    flags.traces_dir = Some(std::path::PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                "--with-fc" => flags.with_fc = true,
                _ => {}
            }
            i += 1;
        }
        flags
    }

    /// Whether `name` is selected by `--models` (everything is when the
    /// flag is absent).
    pub fn selects(&self, name: &str) -> bool {
        match &self.models {
            None => true,
            Some(list) => list.iter().any(|m| m.eq_ignore_ascii_case(name)),
        }
    }

    /// Builds the comparison-runner options these flags describe: the
    /// `--fast` profile, the `--seed`, and `--sim-parallelism` applied on
    /// top of the defaults — the shared entry point of the per-figure
    /// binaries.
    ///
    /// # Errors
    ///
    /// Propagates invalid parallelism configuration.
    pub fn runner_options(&self) -> Result<RunnerOptions> {
        let mut opts = if self.fast { RunnerOptions::fast() } else { RunnerOptions::default() };
        opts.traces = opts.traces.with_seed(self.seed);
        if let Some(n) = self.sim_parallelism {
            opts = opts.with_sim_parallelism(n)?;
        }
        Ok(opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Flags {
        Flags::from_args(args.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn default_selects_everything() {
        let f = Flags::default();
        assert!(f.selects("VGG11"));
        assert!(!f.fast);
        assert!(f.sim_parallelism.is_none());
    }

    #[test]
    fn model_filter_is_case_insensitive() {
        let f = Flags { models: Some(vec!["vgg11".into()]), ..Flags::default() };
        assert!(f.selects("VGG11"));
        assert!(!f.selects("ResNet50"));
    }

    #[test]
    fn sim_parallelism_parses_and_rejects_zero() {
        assert_eq!(parse(&["--sim-parallelism", "4"]).sim_parallelism, Some(4));
        assert_eq!(parse(&["--sim-parallelism", "0"]).sim_parallelism, None);
        assert_eq!(parse(&["--sim-parallelism"]).sim_parallelism, None);
        assert_eq!(parse(&["--fast", "--sim-parallelism", "2"]).sim_parallelism, Some(2));
    }

    #[test]
    fn traces_dir_and_with_fc_parse() {
        let f = parse(&["--traces-dir", "/tmp/t", "--with-fc"]);
        assert_eq!(f.traces_dir.as_deref(), Some(std::path::Path::new("/tmp/t")));
        assert!(f.with_fc);
        let f = parse(&["--traces-dir"]); // missing value: ignored
        assert!(f.traces_dir.is_none());
        assert!(!f.with_fc);
    }

    #[test]
    fn runner_options_apply_all_flags() {
        let f = parse(&["--fast", "--seed", "7", "--sim-parallelism", "3"]);
        let opts = f.runner_options().unwrap();
        assert_eq!(opts.se_cfg.row_sample, 4, "--fast samples output rows");
        assert_eq!(opts.traces.base_seed, 7);
        assert_eq!(opts.sim_parallelism, 3);
        let plain = Flags::default().runner_options().unwrap();
        assert_eq!(plain.se_cfg.row_sample, 1);
    }
}
