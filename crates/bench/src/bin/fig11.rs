//! Fig. 11: normalized number of DRAM accesses (over the SmartExchange
//! accelerator) for the five accelerators on seven models.
//!
//! Paper's range: the baselines need 1.1×–3.5× the DRAM accesses of
//! SmartExchange (geometric means 1.8 / 1.6 / 1.8 / 2.0 for DianNao /
//! SCNN / Cambricon-X / Bit-pragmatic).

use se_bench::args::Flags;
use se_bench::runner::{compare_models, ACCEL_NAMES};
use se_bench::{table, Result};
use se_models::zoo;

fn main() -> Result<()> {
    let flags = Flags::parse();
    let opts = flags.runner_options()?;
    let models: Vec<_> = zoo::accelerator_benchmark_models()
        .into_iter()
        .filter(|m| flags.selects(m.name()))
        .collect();
    eprintln!("running {} models x 5 accelerators (fast={})...", models.len(), flags.fast);
    let comparisons = compare_models(&models, &opts)?;

    println!("Fig. 11: normalized DRAM accesses (over SmartExchange)\n");
    let mut rows = Vec::new();
    let mut per_accel: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for cmp in &comparisons {
        let d = cmp.dram_bytes();
        let se = d[4].expect("SE runs everything") as f64;
        let mut row = vec![cmp.model.clone()];
        for (i, v) in d.iter().enumerate() {
            match v {
                Some(bytes) => {
                    let norm = *bytes as f64 / se;
                    per_accel[i].push(norm);
                    row.push(format!("{norm:.2}"));
                }
                None => row.push("n/a".to_string()),
            }
        }
        rows.push(row);
    }
    let mut geo_row = vec!["Geomean".to_string()];
    for xs in &per_accel {
        geo_row.push(format!("{:.2}", table::geomean(xs)));
    }
    rows.push(geo_row);
    let headers: Vec<&str> = std::iter::once("model").chain(ACCEL_NAMES).collect();
    println!("{}", table::render(&headers, &rows));
    println!("paper: baselines at 1.1x-3.5x of SmartExchange; SmartExchange = 1.0.");
    println!("shape check: every baseline >= 1.0 on every model.");
    Ok(())
}
