//! Fig. 10: normalized energy efficiency (over DianNao) of the five
//! accelerators on seven DNN models and three datasets.
//!
//! Paper's SmartExchange series: 6.7 / 3.4 / 2.3 / 2.0 / 5.0 / 3.3 / 5.2,
//! geometric mean 3.7× over DianNao (and 2.0×–6.7× over the best
//! baseline per model).

use se_bench::args::Flags;
use se_bench::runner::{compare_models, ACCEL_NAMES};
use se_bench::{table, Result};
use se_hw::{EnergyModel, SeAcceleratorConfig};
use se_models::zoo;

fn main() -> Result<()> {
    let flags = Flags::parse();
    let opts = flags.runner_options()?;
    let models: Vec<_> = zoo::accelerator_benchmark_models()
        .into_iter()
        .filter(|m| flags.selects(m.name()))
        .collect();
    eprintln!("running {} models x 5 accelerators (fast={})...", models.len(), flags.fast);
    let comparisons = compare_models(&models, &opts)?;

    let em = EnergyModel::default();
    let cfg = SeAcceleratorConfig::default();
    println!("Fig. 10: normalized energy efficiency (over DianNao)\n");
    let mut rows = Vec::new();
    let mut per_accel: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for cmp in &comparisons {
        let e = cmp.energies_mj(&em, &cfg);
        let base = e[0].expect("DianNao runs everything");
        let mut row = vec![cmp.model.clone()];
        for (i, v) in e.iter().enumerate() {
            match v {
                Some(energy) => {
                    let eff = base / energy;
                    per_accel[i].push(eff);
                    row.push(format!("{eff:.2}"));
                }
                None => row.push("n/a".to_string()),
            }
        }
        rows.push(row);
    }
    let mut geo_row = vec!["Geomean".to_string()];
    for effs in &per_accel {
        geo_row.push(format!("{:.2}", table::geomean(effs)));
    }
    rows.push(geo_row);
    let headers: Vec<&str> = std::iter::once("model").chain(ACCEL_NAMES).collect();
    println!("{}", table::render(&headers, &rows));
    println!("paper SmartExchange row: 6.7 3.4 2.3 2.0 5.0 3.3 5.2 (geomean 3.7)");
    println!("shape checks: SmartExchange highest on every model; DianNao = 1.0.");
    Ok(())
}
