//! Deprecated shim: forwards to `se accel_comparison` on the unified CLI (docs/CLI.md),
//! keeping existing scripts working with byte-identical stdout.

fn main() -> se_bench::Result<()> {
    se_bench::cli::deprecated_shim("accel_comparison")
}
