//! Combined Figs. 10 + 11 + 12: one sweep of the seven benchmark models
//! through all five accelerators, printing all three normalized views
//! (energy efficiency, DRAM accesses, speedup) — the individual `fig10`,
//! `fig11`, `fig12` binaries regenerate each figure separately.

use se_bench::args::Flags;
use se_bench::runner::{compare_models, ACCEL_NAMES};
use se_bench::{table, Result};
use se_hw::{EnergyModel, SeAcceleratorConfig};
use se_models::zoo;

fn main() -> Result<()> {
    let flags = Flags::parse();
    let opts = flags.runner_options()?;
    let models: Vec<_> = zoo::accelerator_benchmark_models()
        .into_iter()
        .filter(|m| flags.selects(m.name()))
        .collect();
    eprintln!("running {} models x 5 accelerators (fast={})...", models.len(), flags.fast);
    let comparisons = compare_models(&models, &opts)?;
    let em = EnergyModel::default();
    let cfg = SeAcceleratorConfig::default();
    let headers: Vec<&str> = std::iter::once("model").chain(ACCEL_NAMES).collect();

    let mut views: Vec<(&str, Vec<Vec<String>>)> = vec![
        ("Fig. 10: normalized energy efficiency (over DianNao)", Vec::new()),
        ("Fig. 11: normalized DRAM accesses (over SmartExchange)", Vec::new()),
        ("Fig. 12: normalized speedup (over DianNao)", Vec::new()),
    ];
    let mut geo: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 5]; 3];
    for cmp in &comparisons {
        let e = cmp.energies_mj(&em, &cfg);
        let d = cmp.dram_bytes();
        let c = cmp.cycles();
        let e0 = e[0].expect("DianNao runs everything");
        let d_se = d[4].expect("SE runs everything") as f64;
        let c0 = c[0].expect("DianNao runs everything") as f64;
        let mut rows: Vec<Vec<String>> = (0..3).map(|_| vec![cmp.model.clone()]).collect();
        for i in 0..5 {
            let vals =
                [e[i].map(|x| e0 / x), d[i].map(|x| x as f64 / d_se), c[i].map(|x| c0 / x as f64)];
            for (v, (row, g)) in
                vals.iter().zip(rows.iter_mut().zip(geo.iter_mut().map(|gg| &mut gg[i])))
            {
                match v {
                    Some(x) => {
                        g.push(*x);
                        row.push(format!("{x:.2}"));
                    }
                    None => row.push("n/a".into()),
                }
            }
        }
        for (view, row) in views.iter_mut().zip(rows) {
            view.1.push(row);
        }
    }
    for (vi, (title, mut rows)) in views.into_iter().enumerate() {
        let mut geo_row = vec!["Geomean".to_string()];
        for g in &geo[vi] {
            geo_row.push(format!("{:.2}", table::geomean(g)));
        }
        rows.push(geo_row);
        println!("{title}\n");
        println!("{}", table::render(&headers, &rows));
    }
    println!("paper rows for SmartExchange:");
    println!("  Fig. 10: 6.7 3.4 2.3 2.0 5.0 3.3 5.2 (geomean 3.7)");
    println!("  Fig. 11: baselines at 1.1x-3.5x of SmartExchange");
    println!("  Fig. 12: 9.7 14.5 15.7 8.8 19.2 13.7 12.6 (geomean 13.0)");
    Ok(())
}
