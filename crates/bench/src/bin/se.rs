//! The unified SmartExchange experiment CLI: every paper table/figure as a
//! subcommand plus trace-artifact management. `se help` lists everything;
//! the full reference is `docs/CLI.md`.

fn main() -> se_bench::Result<()> {
    se_bench::cli::main()
}
