//! Fig. 12: normalized speedup (over DianNao) of the five accelerators on
//! seven models, batch size 1.
//!
//! Paper's SmartExchange series: 9.7 / 14.5 / 15.7 / 8.8 / 19.2 / 13.7 /
//! 12.6 (geometric mean 13.0×), with average advantages of 3.8× / 2.5× /
//! 2.0× over SCNN / Cambricon-X / Bit-pragmatic.

use se_bench::args::Flags;
use se_bench::runner::{compare_models, ACCEL_NAMES};
use se_bench::{table, Result};
use se_models::zoo;

fn main() -> Result<()> {
    let flags = Flags::parse();
    let opts = flags.runner_options()?;
    let models: Vec<_> = zoo::accelerator_benchmark_models()
        .into_iter()
        .filter(|m| flags.selects(m.name()))
        .collect();
    eprintln!("running {} models x 5 accelerators (fast={})...", models.len(), flags.fast);
    let comparisons = compare_models(&models, &opts)?;

    println!("Fig. 12: normalized speedup (over DianNao), batch 1\n");
    let mut rows = Vec::new();
    let mut per_accel: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for cmp in &comparisons {
        let c = cmp.cycles();
        let base = c[0].expect("DianNao runs everything") as f64;
        let mut row = vec![cmp.model.clone()];
        for (i, v) in c.iter().enumerate() {
            match v {
                Some(cycles) => {
                    let speedup = base / *cycles as f64;
                    per_accel[i].push(speedup);
                    row.push(format!("{speedup:.2}"));
                }
                None => row.push("n/a".to_string()),
            }
        }
        rows.push(row);
    }
    let mut geo_row = vec!["Geomean".to_string()];
    for xs in &per_accel {
        geo_row.push(format!("{:.2}", table::geomean(xs)));
    }
    rows.push(geo_row);
    let headers: Vec<&str> = std::iter::once("model").chain(ACCEL_NAMES).collect();
    println!("{}", table::render(&headers, &rows));
    println!("paper SmartExchange row: 9.7 14.5 15.7 8.8 19.2 13.7 12.6 (geomean 13.0)");
    println!("shape checks: SmartExchange fastest everywhere; DianNao = 1.0.");
    Ok(())
}
