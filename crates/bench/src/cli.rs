//! The unified `se` command-line interface.
//!
//! One binary hosts every experiment as a subcommand on the shared
//! [`Flags`] flag surface (`se fig10`, `se table2`, `se compare`, …),
//! trace artifact management (`se trace build` / `se trace info`), and the
//! serving subsystem (`se batch`, `se serve`). The old standalone
//! per-figure binaries went through a deprecation window as forwarding
//! shims and have been removed; the full subcommand and flag reference
//! lives in `docs/CLI.md`.
//!
//! This module also hosts the output boilerplate the per-figure binaries
//! used to duplicate: model selection ([`selected_models`]), the
//! five-accelerator sweep prologue ([`comparison_sweep`]), and the
//! normalized table with its geometric-mean row ([`normalized_view`]).

use crate::args::Flags;
use crate::runner::{self, ModelComparison, ACCEL_NAMES};
use crate::{figures, table, Result};
use se_ir::NetworkDesc;
use se_models::zoo;
use std::io::Write;

/// Subcommand inventory: `(canonical name, aliases, one-line summary)`.
/// Aliases keep the old standalone-binary names working as subcommands.
pub const SUBCOMMANDS: &[(&str, &[&str], &str)] = &[
    ("table1", &[], "Table I: unit energy costs (28 nm) behind the simulators"),
    ("table2", &[], "Table II: compression rate / storage split on the benchmark networks"),
    ("table3", &[], "Table III: compression on the compact models (MBV2, EfficientNet-B0)"),
    ("fig4", &[], "Fig. 4: bit-level activation sparsity with/without Booth encoding"),
    ("fig8", &[], "Fig. 8: accuracy vs model size against pruning/quantization baselines"),
    ("fig9", &[], "Fig. 9: decomposition evolution on one ResNet164 weight matrix"),
    ("fig10", &[], "Fig. 10: normalized energy efficiency of the five accelerators"),
    ("fig11", &[], "Fig. 11: normalized DRAM accesses of the five accelerators"),
    ("fig12", &[], "Fig. 12: normalized speedup of the five accelerators"),
    ("fig13", &[], "Fig. 13: SmartExchange energy breakdown (CONV-only and all layers)"),
    ("fig14", &[], "Fig. 14: ResNet50 energy/latency vs vector-wise weight sparsity"),
    ("fig15", &[], "Fig. 15: MobileNetV2 depth-wise layers with/without the compact design"),
    ("compare", &["accel_comparison", "accel-comparison"], "Figs. 10+11+12 in one sweep"),
    ("ablation", &["ablation_components", "ablation-components"], "Section V-B component ablation"),
    ("postproc", &["post_processing", "post-processing"], "Section III-C post-processing on VGG19"),
    ("trace", &[], "build/inspect persisted trace artifacts (se trace build|info)"),
    ("batch", &[], "batch-size sweep: weight-fetch amortization per image"),
    ("serve", &[], "request-driven batched serving simulation (queue + aggregator)"),
    ("cluster", &[], "sharded multi-instance serving: routing, SLOs, weight residency"),
    ("bench", &[], "wall-clock runtime benchmarks (se bench serve -> BENCH_serve.json)"),
    ("obs", &[], "trace analytics over --trace-out files (se obs summarize|attribute|diff)"),
];

/// Resolves a user-supplied subcommand name (alias-aware) to its canonical
/// name, or `None` for unknown commands.
pub fn canonical(name: &str) -> Option<&'static str> {
    SUBCOMMANDS
        .iter()
        .find(|(canon, aliases, _)| *canon == name || aliases.contains(&name))
        .map(|(canon, _, _)| *canon)
}

/// The `se --help` text.
pub fn usage() -> String {
    let mut s = String::from(
        "se — SmartExchange experiment harness (docs/CLI.md)\n\n\
         USAGE: se <subcommand> [flags]\n\nSUBCOMMANDS:\n",
    );
    for (name, _, about) in SUBCOMMANDS {
        s.push_str(&format!("  {name:<10} {about}\n"));
    }
    s.push_str(
        "\nCOMMON FLAGS:\n  \
         --fast               sampled output rows + fewer decomposition iterations\n  \
         --seed N             base seed for synthetic weights/activations (default 0)\n  \
         --models a,b,c       restrict to a subset of model names\n  \
         --sim-parallelism N  worker threads for the simulation grid (bit-identical)\n  \
         --traces-dir DIR     replay persisted trace/compression artifacts (se trace build)\n  \
         --with-fc            include FC layers when building traces\n\n\
         SERVING FLAGS (se batch / se serve):\n  \
         --batch-sizes 1,4,16 batch sizes swept by se batch\n  \
         --max-batch N        aggregator batch-size cap (default 8)\n  \
         --max-wait-us F      aggregator max wait for the oldest request (default 50)\n  \
         --arrival KIND       uniform | burst | closed (default uniform)\n  \
         --requests N         total requests in the workload (default 256)\n  \
         --rate F             open-loop arrival rate in req/s (default: 1.5x service rate)\n  \
         --burst N            requests per burst for --arrival burst\n  \
         --queue-cap N        bounded request-queue capacity (default 256)\n  \
         --concurrency N      clients for --arrival closed (default 2x max batch)\n  \
         --deadline-us F      per-request deadline; misses are reported (se serve/cluster)\n  \
         --runtime KIND       sim | staged serving back end (default sim; same output)\n  \
         --exec-workers N     staged execution-pool threads (default SE_PARALLELISM)\n  \
         --trace-out FILE     write a Chrome-trace/Perfetto JSON of the run\n  \
                              (se serve / se cluster / se bench serve)\n  \
         --metrics-out FILE   write Prometheus-style text metrics of the run\n\n\
         CLUSTER FLAGS (se cluster):\n  \
         --instances N        accelerator instances behind the shared front (default 4)\n  \
         --router KIND        rr | jsq | affinity routing policy (default jsq)\n  \
         --buffer-kb F        per-instance weight buffer; enables residency modeling\n  \
         --tiers SPECS        tiered weight store, top tier first (replaces --buffer-kb):\n  \
                              name:CAP:BW triples, e.g. buf:64kb:16,dram:4mb:8,ssd:2gb:1\n  \
         --kill i@t_us        kill instance i at t microseconds (repeatable; in-flight\n  \
                              requests re-route with original arrival/deadline)\n  \
         --restart i@t_us     restart a killed instance (empty queue, cold weight buffer)\n  \
         --autoscale hi:lo    spawn above hi waiting/instance, drain below lo\n\n\
         BENCH FLAGS (se bench serve):\n  \
         --workers 1,4,8      staged worker counts swept (default 1,min(4,host),host)\n  \
         --bench-out FILE     machine-readable report path (default BENCH_serve.json)\n\n\
         OBS FLAGS (se obs summarize|attribute|diff):\n  \
         --window-us F        analysis window width in microseconds (default 200)\n\n\
         ENVIRONMENT:\n  \
         SE_PARALLELISM       default worker count for all parallel stages\n  \
         SE_LOG               stderr log level: error|warn|info|debug (default warn)\n  \
         SE_TRACE_WALL        1 = annotate staged traces with wall-clock stage timings\n",
    );
    s
}

/// Entry point of the `se` binary: dispatches `std::env::args` to a
/// subcommand, writing results to stdout.
///
/// # Errors
///
/// Propagates the subcommand's failure (the binary prints it and exits
/// non-zero).
pub fn main() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run_from_args(&args, &mut std::io::stdout().lock())
}

/// Dispatches an argument list (`[subcommand, flags...]`) to its
/// implementation, writing the experiment output to `out` — the testable
/// core of [`main`].
///
/// # Errors
///
/// Fails on unknown subcommands and propagates subcommand failures.
pub fn run_from_args(args: &[String], out: &mut dyn Write) -> Result<()> {
    match args.first().map(String::as_str) {
        None | Some("help" | "--help" | "-h") => {
            write!(out, "{}", usage())?;
            Ok(())
        }
        Some(cmd) => run_subcommand(cmd, &args[1..], out),
    }
}

/// Runs one subcommand with the given trailing arguments.
///
/// # Errors
///
/// Fails on unknown subcommands and propagates subcommand failures.
pub fn run_subcommand(name: &str, rest: &[String], out: &mut dyn Write) -> Result<()> {
    let flags = Flags::from_args(rest.iter().cloned());
    let Some(canon) = canonical(name) else {
        return Err(format!("unknown subcommand `{name}`\n\n{}", usage()).into());
    };
    match canon {
        "table1" => figures::table1::run(&flags, out),
        "table2" => figures::table2::run(&flags, out),
        "table3" => figures::table3::run(&flags, out),
        "fig4" => figures::fig4::run(&flags, out),
        "fig8" => figures::fig8::run(&flags, out),
        "fig9" => figures::fig9::run(&flags, out),
        "fig10" => figures::fig10::run(&flags, out),
        "fig11" => figures::fig11::run(&flags, out),
        "fig12" => figures::fig12::run(&flags, out),
        "fig13" => figures::fig13::run(&flags, out),
        "fig14" => figures::fig14::run(&flags, out),
        "fig15" => figures::fig15::run(&flags, out),
        "compare" => figures::compare::run(&flags, out),
        "ablation" => figures::ablation::run(&flags, out),
        "postproc" => figures::postproc::run(&flags, out),
        "trace" => figures::trace::run(rest, &flags, out),
        "batch" => figures::batch::run(&flags, out),
        "serve" => figures::serve::run(&flags, out),
        "cluster" => figures::cluster::run(&flags, out),
        "bench" => figures::bench_serve::run(rest, &flags, out),
        "obs" => figures::obs::run(rest, &flags, out),
        _ => unreachable!("canonical() only returns inventory names"),
    }
}

/// The accelerator-comparison model set (Figs. 10–13) restricted by
/// `--models`.
pub fn selected_models(flags: &Flags) -> Vec<NetworkDesc> {
    zoo::accelerator_benchmark_models().into_iter().filter(|m| flags.selects(m.name())).collect()
}

/// The shared prologue of the five-accelerator figures: runner options
/// from the flags, a progress note on stderr, then the sweep — replaying
/// persisted traces when `--traces-dir` holds matching artifacts.
///
/// # Errors
///
/// Propagates option and sweep failures.
pub fn comparison_sweep(flags: &Flags, models: &[NetworkDesc]) -> Result<Vec<ModelComparison>> {
    let opts = flags.runner_options()?;
    se_core::se_info!("running {} models x 5 accelerators (fast={})...", models.len(), flags.fast);
    runner::compare_models_cached(models, &opts, flags.traces_dir.as_deref())
}

/// Renders the normalized per-model × per-accelerator table every
/// comparison figure prints: one row per model (`n/a` where a design
/// cannot run it), a trailing geometric-mean row, and the shared header.
/// `values` returns the already-normalized series for one model, indexed
/// like [`ACCEL_NAMES`].
pub fn normalized_view(
    comparisons: &[ModelComparison],
    values: impl Fn(&ModelComparison) -> [Option<f64>; 5],
) -> String {
    let mut rows = Vec::new();
    let mut per_accel: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for cmp in comparisons {
        let mut row = vec![cmp.model.clone()];
        for (i, v) in values(cmp).iter().enumerate() {
            match v {
                Some(x) => {
                    per_accel[i].push(*x);
                    row.push(format!("{x:.2}"));
                }
                None => row.push("n/a".to_string()),
            }
        }
        rows.push(row);
    }
    let mut geo_row = vec!["Geomean".to_string()];
    for xs in &per_accel {
        geo_row.push(format!("{:.2}", table::geomean(xs)));
    }
    rows.push(geo_row);
    let headers: Vec<&str> = std::iter::once("model").chain(ACCEL_NAMES).collect();
    table::render(&headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_resolves_names_and_aliases() {
        assert_eq!(canonical("fig10"), Some("fig10"));
        assert_eq!(canonical("accel_comparison"), Some("compare"));
        assert_eq!(canonical("post-processing"), Some("postproc"));
        assert_eq!(canonical("nope"), None);
    }

    #[test]
    fn help_lists_every_subcommand() {
        let u = usage();
        for (name, _, _) in SUBCOMMANDS {
            assert!(u.contains(name), "usage must mention {name}");
        }
        assert!(u.contains("--traces-dir"));
        let mut out = Vec::new();
        run_from_args(&[], &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), usage());
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        let mut out = Vec::new();
        let err = run_from_args(&["frobnicate".to_string()], &mut out).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn table1_runs_through_the_dispatcher() {
        let mut out = Vec::new();
        run_from_args(&["table1".to_string()], &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Table I"));
        assert!(text.contains("DRAM"));
    }
}
