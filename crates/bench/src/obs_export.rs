//! Exporters for the observability layer (`se_obs`): Chrome-trace /
//! Perfetto `traceEvents` JSON and Prometheus-style text exposition,
//! built on the same hand-rolled [`crate::json`] emitter as the bench
//! reports.
//!
//! Both exports are **deterministic renderings of the virtual-time event
//! stream**: the stream is byte-identical across `--sim-parallelism`
//! values and across `--runtime sim|staged` (see `se_serve`'s
//! `tests/obs_stream.rs`), and the exporters add no wall-clock or
//! environment-dependent fields, so the files inherit that byte
//! identity. Load a `--trace-out` file at <https://ui.perfetto.dev> (or
//! `chrome://tracing`); one trace "process" per stream (a cluster lane
//! or a served model), one "thread" per instance, one timestamp tick
//! per virtual cycle.

use std::collections::{BTreeMap, BTreeSet};

use se_obs::{Event, EventKind, MetricsRegistry};

use crate::json::Json;

/// Builds a Chrome-trace document from named event streams (one trace
/// `pid` per stream, in order — e.g. one per cluster lane). Batch
/// executions become `ph: "X"` duration spans on their instance's
/// thread, queue-depth samples become `ph: "C"` counter tracks, and
/// everything else — admissions, per-request completions, faults, tier
/// traffic — becomes a `ph: "i"` instant carrying its full payload in
/// `args`. Every event kind lands in the trace, so the document is a
/// lossless encoding of the stream: [`events_from_chrome_trace`] is its
/// exact inverse, which is what lets `se obs` re-analyze a `--trace-out`
/// artifact long after the run.
pub fn chrome_trace(streams: &[(String, &[Event])]) -> Json {
    let mut events = Vec::new();
    for (pid, (label, stream)) in streams.iter().enumerate() {
        events.push(metadata(pid, 0, "process_name", label));
        let tids: BTreeSet<usize> = stream.iter().filter_map(|e| e.kind.instance()).collect();
        for tid in tids {
            events.push(metadata(pid, tid, "thread_name", &format!("instance {tid}")));
        }
    }
    for (pid, (_, stream)) in streams.iter().enumerate() {
        events.extend(stream.iter().filter_map(|event| trace_event(pid, event)));
    }
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
    ])
}

/// Renders named event streams as Prometheus-style text exposition: each
/// stream is folded through [`MetricsRegistry::ingest`] under a
/// `stream="<label>"` label, so lanes stay comparable side by side.
pub fn metrics_text(streams: &[(String, &[Event])]) -> String {
    let mut registry = MetricsRegistry::new();
    for (label, stream) in streams {
        registry.ingest(stream, &[("stream", label)]);
    }
    registry.render()
}

/// Writes `content` to `path` (shared by the `--trace-out` /
/// `--metrics-out` call sites so the error message is uniform).
///
/// # Errors
///
/// Propagates the I/O error, naming the file.
pub fn write_export(path: &std::path::Path, content: &str) -> crate::Result<()> {
    std::fs::write(path, content).map_err(|e| format!("writing {}: {e}", path.display()).into())
}

/// The `--trace-out` / `--metrics-out` epilogue shared by `se serve`,
/// `se cluster`, and `se bench serve`: renders the recorded streams into
/// whichever exports were requested. Confirmation notes go to stderr at
/// info level (`SE_LOG=info`), never stdout — report output stays
/// byte-identical whether or not exports were written.
///
/// # Errors
///
/// Propagates file-write failures.
pub fn write_observability(
    trace_out: Option<&std::path::Path>,
    metrics_out: Option<&std::path::Path>,
    streams: &[(String, Vec<Event>)],
) -> crate::Result<()> {
    let views: Vec<(String, &[Event])> =
        streams.iter().map(|(name, events)| (name.clone(), events.as_slice())).collect();
    if let Some(path) = trace_out {
        write_export(path, &chrome_trace(&views).render())?;
        se_core::se_info!("wrote Chrome-trace JSON to {}", path.display());
    }
    if let Some(path) = metrics_out {
        write_export(path, &metrics_text(&views))?;
        se_core::se_info!("wrote metrics exposition to {}", path.display());
    }
    Ok(())
}

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

fn metadata(pid: usize, tid: usize, name: &str, arg_name: &str) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(name.to_string())),
        ("ph".to_string(), Json::Str("M".to_string())),
        ("pid".to_string(), num(pid as u64)),
        ("tid".to_string(), num(tid as u64)),
        (
            "args".to_string(),
            Json::Obj(vec![("name".to_string(), Json::Str(arg_name.to_string()))]),
        ),
    ])
}

/// One trace event: a span, counter, or instant — every kind lands.
fn trace_event(pid: usize, event: &Event) -> Option<Json> {
    let kind = &event.kind;
    let args = |fields: Vec<(&str, Json)>| {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };
    // Spans and counters first; everything else is an instant.
    match *kind {
        EventKind::BatchLaunched { seq, instance, model, size, done } => {
            return Some(Json::Obj(vec![
                ("name".to_string(), Json::Str(format!("batch m{model} x{size}"))),
                ("ph".to_string(), Json::Str("X".to_string())),
                ("pid".to_string(), num(pid as u64)),
                ("tid".to_string(), num(instance as u64)),
                ("ts".to_string(), num(event.at)),
                ("dur".to_string(), num(done.saturating_sub(event.at))),
                (
                    "args".to_string(),
                    args(vec![
                        ("seq", num(seq)),
                        ("model", num(model as u64)),
                        ("size", num(size as u64)),
                    ]),
                ),
            ]));
        }
        EventKind::QueueDepth { instance, depth } => {
            return Some(Json::Obj(vec![
                ("name".to_string(), Json::Str(format!("queue_depth i{instance}"))),
                ("ph".to_string(), Json::Str("C".to_string())),
                ("pid".to_string(), num(pid as u64)),
                ("tid".to_string(), num(instance as u64)),
                ("ts".to_string(), num(event.at)),
                ("args".to_string(), args(vec![("depth", num(depth as u64))])),
            ]));
        }
        _ => {}
    }
    let details = match *kind {
        EventKind::Admitted { id, model, .. } | EventKind::Rejected { id, model } => {
            vec![("id", num(id as u64)), ("model", num(model as u64))]
        }
        EventKind::Lost { id, model } => {
            vec![("id", num(id as u64)), ("model", num(model as u64))]
        }
        EventKind::BatchCompleted { seq, size, .. } => {
            vec![("seq", num(seq)), ("size", num(size as u64))]
        }
        EventKind::BatchKilled { seq, .. } => vec![("seq", num(seq))],
        EventKind::BatchFormed { seq, model, size, .. } => {
            vec![("seq", num(seq)), ("model", num(model as u64)), ("size", num(size as u64))]
        }
        EventKind::Served { id, model, batch, enqueued, latency, missed, .. } => vec![
            ("id", num(id as u64)),
            ("model", num(model as u64)),
            ("batch", num(batch)),
            ("enqueued", num(enqueued)),
            ("latency", num(latency)),
            ("missed", Json::Bool(missed)),
        ],
        EventKind::InstanceKilled { in_flight, rerouted, lost, .. } => {
            vec![("in_flight", num(in_flight)), ("rerouted", num(rerouted)), ("lost", num(lost))]
        }
        EventKind::InstanceRestarted { .. }
        | EventKind::InstanceSpawned { .. }
        | EventKind::InstanceDraining { .. } => vec![],
        EventKind::TierHit { model, .. } => vec![("model", num(model as u64))],
        EventKind::TierPromoted { model, from, cycles, bytes, .. } => vec![
            ("model", num(model as u64)),
            ("from", num(from as u64)),
            ("cycles", num(cycles)),
            ("bytes", num(bytes)),
        ],
        EventKind::TierDemoted { model, to, bytes, dropped, .. } => vec![
            ("model", num(model as u64)),
            ("to", num(to as u64)),
            ("bytes", num(bytes)),
            ("dropped", Json::Bool(dropped)),
        ],
        EventKind::TierColdFetch { model, cycles, bytes, .. } => {
            vec![("model", num(model as u64)), ("cycles", num(cycles)), ("bytes", num(bytes))]
        }
        EventKind::TierStreamed { model, cycles, .. } => {
            vec![("model", num(model as u64)), ("cycles", num(cycles))]
        }
        EventKind::StageWall { stage, wall_ns } => {
            vec![("stage", Json::Str(stage.to_string())), ("wall_ns", num(wall_ns))]
        }
        _ => unreachable!("spans and counters are handled above"),
    };
    let (tid, scope) = match kind.instance() {
        Some(instance) => (instance as u64, "t"),
        None => (0, "p"),
    };
    Some(Json::Obj(vec![
        ("name".to_string(), Json::Str(kind.name().to_string())),
        ("ph".to_string(), Json::Str("i".to_string())),
        ("pid".to_string(), num(pid as u64)),
        ("tid".to_string(), num(tid)),
        ("ts".to_string(), num(event.at)),
        ("s".to_string(), Json::Str(scope.to_string())),
        ("args".to_string(), args(details)),
    ]))
}

/// The exact inverse of [`chrome_trace`]: reconstructs the named event
/// streams from a parsed trace document, in stream (`pid`) order, each
/// stream in its original emission order. `chrome_trace` loses nothing —
/// every [`EventKind`] is rendered with its full payload — so
/// `events_from_chrome_trace(&chrome_trace(streams))` returns `streams`
/// verbatim, and `se obs` can analyze a `--trace-out` file exactly as it
/// would the in-memory recording.
///
/// # Errors
///
/// Fails loudly — naming the offending entry — on anything that is not a
/// trace this exporter wrote: a missing `traceEvents` array, an entry
/// without `ph`/`pid`/`ts`, an unknown instant name, a missing or
/// mistyped payload field, or a `pid` with no `process_name` metadata
/// (a truncated or foreign trace).
pub fn events_from_chrome_trace(doc: &Json) -> crate::Result<Vec<(String, Vec<Event>)>> {
    let entries = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("not a Chrome-trace document: no `traceEvents` array")?;
    let mut labels: BTreeMap<u64, String> = BTreeMap::new();
    let mut streams: BTreeMap<u64, Vec<Event>> = BTreeMap::new();
    for (pos, entry) in entries.iter().enumerate() {
        let ph = str_field(entry, "ph", pos)?;
        let pid = u64_field(entry, "pid", pos)?;
        if ph == "M" {
            // thread_name metadata is derived from the events; only the
            // process_name rows carry reconstruction state (the labels).
            if str_field(entry, "name", pos)? == "process_name" {
                let label = entry
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| {
                        format!("trace event #{pos}: process_name metadata without args.name")
                    })?;
                labels.insert(pid, label.to_string());
                streams.entry(pid).or_default();
            }
        } else {
            streams.entry(pid).or_default().push(invert_event(entry, ph, pos)?);
        }
    }
    let mut out = Vec::with_capacity(streams.len());
    for (pid, stream) in streams {
        let label = labels.remove(&pid).ok_or_else(|| {
            format!("trace names no process for pid {pid} — truncated or foreign trace?")
        })?;
        out.push((label, stream));
    }
    Ok(out)
}

/// Inverts one non-metadata trace entry back into its [`Event`].
fn invert_event(entry: &Json, ph: &str, pos: usize) -> crate::Result<Event> {
    let at = u64_field(entry, "ts", pos)?;
    let tid = u64_field(entry, "tid", pos)? as usize;
    let arg = |name: &str| arg_u64(entry, name, pos);
    let kind = match ph {
        "X" => EventKind::BatchLaunched {
            seq: arg("seq")?,
            instance: tid,
            model: arg("model")? as usize,
            size: arg("size")? as usize,
            done: at + u64_field(entry, "dur", pos)?,
        },
        "C" => EventKind::QueueDepth { instance: tid, depth: arg("depth")? as usize },
        "i" => match str_field(entry, "name", pos)? {
            "admitted" => EventKind::Admitted {
                id: arg("id")? as usize,
                model: arg("model")? as usize,
                instance: tid,
            },
            "rejected" => {
                EventKind::Rejected { id: arg("id")? as usize, model: arg("model")? as usize }
            }
            "lost" => EventKind::Lost { id: arg("id")? as usize, model: arg("model")? as usize },
            "batch_formed" => EventKind::BatchFormed {
                seq: arg("seq")?,
                instance: tid,
                model: arg("model")? as usize,
                size: arg("size")? as usize,
            },
            "batch_completed" => EventKind::BatchCompleted {
                seq: arg("seq")?,
                instance: tid,
                size: arg("size")? as usize,
            },
            "batch_killed" => EventKind::BatchKilled { seq: arg("seq")?, instance: tid },
            "served" => EventKind::Served {
                id: arg("id")? as usize,
                model: arg("model")? as usize,
                instance: tid,
                batch: arg("batch")?,
                enqueued: arg("enqueued")?,
                latency: arg("latency")?,
                missed: arg_bool(entry, "missed", pos)?,
            },
            "instance_killed" => EventKind::InstanceKilled {
                instance: tid,
                in_flight: arg("in_flight")?,
                rerouted: arg("rerouted")?,
                lost: arg("lost")?,
            },
            "instance_restarted" => EventKind::InstanceRestarted { instance: tid },
            "instance_spawned" => EventKind::InstanceSpawned { instance: tid },
            "instance_draining" => EventKind::InstanceDraining { instance: tid },
            "tier_hit" => EventKind::TierHit { instance: tid, model: arg("model")? as usize },
            "tier_promoted" => EventKind::TierPromoted {
                instance: tid,
                model: arg("model")? as usize,
                from: arg("from")? as usize,
                cycles: arg("cycles")?,
                bytes: arg("bytes")?,
            },
            "tier_demoted" => EventKind::TierDemoted {
                instance: tid,
                model: arg("model")? as usize,
                to: arg("to")? as usize,
                bytes: arg("bytes")?,
                dropped: arg_bool(entry, "dropped", pos)?,
            },
            "tier_cold_fetch" => EventKind::TierColdFetch {
                instance: tid,
                model: arg("model")? as usize,
                cycles: arg("cycles")?,
                bytes: arg("bytes")?,
            },
            "tier_streamed" => EventKind::TierStreamed {
                instance: tid,
                model: arg("model")? as usize,
                cycles: arg("cycles")?,
            },
            "stage_wall" => EventKind::StageWall {
                stage: stage_label(arg_str(entry, "stage", pos)?),
                wall_ns: arg("wall_ns")?,
            },
            other => {
                return Err(format!(
                    "trace event #{pos}: unknown instant `{other}` — foreign trace?"
                )
                .into())
            }
        },
        other => return Err(format!("trace event #{pos}: unsupported phase `{other}`").into()),
    };
    Ok(Event { at, kind })
}

/// Restores a stage annotation's `&'static str` label: the known labels
/// map to their static selves, anything else is leaked once (stage
/// labels are a tiny closed set; a foreign label means a foreign trace,
/// and the leak is bounded by the trace's distinct labels).
fn stage_label(stage: &str) -> &'static str {
    match stage {
        "staged-pipeline" => "staged-pipeline",
        other => Box::leak(other.to_string().into_boxed_str()),
    }
}

fn str_field<'j>(entry: &'j Json, name: &str, pos: usize) -> crate::Result<&'j str> {
    entry
        .get(name)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("trace event #{pos}: missing string `{name}`").into())
}

fn u64_field(entry: &Json, name: &str, pos: usize) -> crate::Result<u64> {
    let value = entry
        .get(name)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("trace event #{pos}: missing numeric `{name}`"))?;
    if value < 0.0 || value.fract() != 0.0 || value > u64::MAX as f64 {
        return Err(
            format!("trace event #{pos}: `{name}` = {value} is not an unsigned integer").into()
        );
    }
    Ok(value as u64)
}

fn arg_u64(entry: &Json, name: &str, pos: usize) -> crate::Result<u64> {
    let value = entry
        .get("args")
        .and_then(|a| a.get(name))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("trace event #{pos}: missing numeric arg `{name}`"))?;
    if value < 0.0 || value.fract() != 0.0 || value > u64::MAX as f64 {
        return Err(format!(
            "trace event #{pos}: arg `{name}` = {value} is not an unsigned integer"
        )
        .into());
    }
    Ok(value as u64)
}

fn arg_bool(entry: &Json, name: &str, pos: usize) -> crate::Result<bool> {
    entry
        .get("args")
        .and_then(|a| a.get(name))
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("trace event #{pos}: missing boolean arg `{name}`").into())
}

fn arg_str<'j>(entry: &'j Json, name: &str, pos: usize) -> crate::Result<&'j str> {
    entry
        .get("args")
        .and_then(|a| a.get(name))
        .and_then(Json::as_str)
        .ok_or_else(|| format!("trace event #{pos}: missing string arg `{name}`").into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_stream() -> Vec<Event> {
        vec![
            Event { at: 0, kind: EventKind::Admitted { id: 0, model: 1, instance: 0 } },
            Event { at: 0, kind: EventKind::QueueDepth { instance: 0, depth: 1 } },
            Event {
                at: 5,
                kind: EventKind::TierPromoted {
                    instance: 0,
                    model: 1,
                    from: 1,
                    cycles: 14,
                    bytes: 70,
                },
            },
            Event {
                at: 5,
                kind: EventKind::BatchLaunched { seq: 0, instance: 0, model: 1, size: 1, done: 25 },
            },
            Event { at: 7, kind: EventKind::Rejected { id: 1, model: 0 } },
            Event { at: 25, kind: EventKind::BatchCompleted { seq: 0, instance: 0, size: 1 } },
            Event {
                at: 25,
                kind: EventKind::Served {
                    id: 0,
                    model: 1,
                    instance: 0,
                    batch: 0,
                    enqueued: 0,
                    latency: 25,
                    missed: false,
                },
            },
        ]
    }

    /// One event of every kind, exercising every inversion arm.
    fn full_taxonomy_stream() -> Vec<Event> {
        let kinds = vec![
            EventKind::Admitted { id: 0, model: 1, instance: 0 },
            EventKind::QueueDepth { instance: 0, depth: 3 },
            EventKind::Rejected { id: 1, model: 0 },
            EventKind::Lost { id: 2, model: 1 },
            EventKind::TierHit { instance: 0, model: 1 },
            EventKind::TierPromoted { instance: 0, model: 2, from: 2, cycles: 40, bytes: 128 },
            EventKind::TierDemoted { instance: 0, model: 3, to: 1, bytes: 64, dropped: false },
            EventKind::TierDemoted { instance: 0, model: 4, to: 3, bytes: 32, dropped: true },
            EventKind::TierColdFetch { instance: 0, model: 5, cycles: 90, bytes: 256 },
            EventKind::TierStreamed { instance: 0, model: 6, cycles: 70 },
            EventKind::BatchFormed { seq: 0, instance: 0, model: 1, size: 2 },
            EventKind::BatchLaunched { seq: 0, instance: 0, model: 1, size: 2, done: 60 },
            EventKind::Served {
                id: 0,
                model: 1,
                instance: 0,
                batch: 0,
                enqueued: 4,
                latency: 60,
                missed: true,
            },
            EventKind::BatchCompleted { seq: 0, instance: 0, size: 2 },
            EventKind::BatchKilled { seq: 1, instance: 1 },
            EventKind::InstanceKilled { instance: 1, in_flight: 2, rerouted: 1, lost: 1 },
            EventKind::InstanceRestarted { instance: 1 },
            EventKind::InstanceSpawned { instance: 2 },
            EventKind::InstanceDraining { instance: 2 },
            EventKind::StageWall { stage: "staged-pipeline", wall_ns: 12345 },
        ];
        kinds.into_iter().enumerate().map(|(i, kind)| Event { at: i as u64 * 3, kind }).collect()
    }

    /// The golden bytes of a small export: locks the exact on-disk shape
    /// (field order, integer formatting, metadata placement) so any
    /// accidental format drift fails loudly, and proves the render →
    /// parse → render loop is byte-stable.
    #[test]
    fn chrome_trace_golden_bytes_and_round_trip() {
        let stream = vec![
            Event { at: 0, kind: EventKind::Admitted { id: 0, model: 1, instance: 0 } },
            Event {
                at: 5,
                kind: EventKind::BatchLaunched { seq: 0, instance: 0, model: 1, size: 1, done: 25 },
            },
        ];
        let doc = chrome_trace(&[("lane".to_string(), stream.as_slice())]);
        let text = doc.render();
        let golden = concat!(
            "{\n",
            "  \"traceEvents\": [\n",
            "    {\n",
            "      \"name\": \"process_name\",\n",
            "      \"ph\": \"M\",\n",
            "      \"pid\": 0,\n",
            "      \"tid\": 0,\n",
            "      \"args\": {\n",
            "        \"name\": \"lane\"\n",
            "      }\n",
            "    },\n",
            "    {\n",
            "      \"name\": \"thread_name\",\n",
            "      \"ph\": \"M\",\n",
            "      \"pid\": 0,\n",
            "      \"tid\": 0,\n",
            "      \"args\": {\n",
            "        \"name\": \"instance 0\"\n",
            "      }\n",
            "    },\n",
            "    {\n",
            "      \"name\": \"admitted\",\n",
            "      \"ph\": \"i\",\n",
            "      \"pid\": 0,\n",
            "      \"tid\": 0,\n",
            "      \"ts\": 0,\n",
            "      \"s\": \"t\",\n",
            "      \"args\": {\n",
            "        \"id\": 0,\n",
            "        \"model\": 1\n",
            "      }\n",
            "    },\n",
            "    {\n",
            "      \"name\": \"batch m1 x1\",\n",
            "      \"ph\": \"X\",\n",
            "      \"pid\": 0,\n",
            "      \"tid\": 0,\n",
            "      \"ts\": 5,\n",
            "      \"dur\": 20,\n",
            "      \"args\": {\n",
            "        \"seq\": 0,\n",
            "        \"model\": 1,\n",
            "        \"size\": 1\n",
            "      }\n",
            "    }\n",
            "  ],\n",
            "  \"displayTimeUnit\": \"ms\"\n",
            "}\n",
        );
        assert_eq!(text, golden);
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(reparsed.render(), text, "render → parse → render is byte-stable");
    }

    #[test]
    fn every_trace_kind_lands_in_the_right_phase() {
        let stream = small_stream();
        let doc = chrome_trace(&[("l0".to_string(), stream.as_slice())]);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let phase_of = |name: &str| -> Option<&str> {
            events
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .and_then(|e| e.get("ph"))
                .and_then(Json::as_str)
        };
        assert_eq!(phase_of("admitted"), Some("i"));
        assert_eq!(phase_of("rejected"), Some("i"));
        assert_eq!(phase_of("tier_promoted"), Some("i"));
        assert_eq!(phase_of("batch m1 x1"), Some("X"));
        assert_eq!(phase_of("queue_depth i0"), Some("C"));
        // Per-request completions ride along as instants — the trace is a
        // lossless encoding of the stream.
        assert_eq!(phase_of("served"), Some("i"));
        // Rejections are process-scoped instants (no instance).
        let rejected = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("rejected"))
            .unwrap();
        assert_eq!(rejected.get("s").and_then(Json::as_str), Some("p"));
        assert_eq!(rejected.get("tid").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn multi_stream_traces_get_one_pid_per_stream() {
        let a = small_stream();
        let b = vec![Event { at: 3, kind: EventKind::TierHit { instance: 2, model: 0 } }];
        let doc =
            chrome_trace(&[("se".to_string(), a.as_slice()), ("dense".to_string(), b.as_slice())]);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let hit = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("tier_hit"))
            .unwrap();
        assert_eq!(hit.get("pid").and_then(Json::as_f64), Some(1.0));
        assert_eq!(hit.get("tid").and_then(Json::as_f64), Some(2.0));
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(names, ["se", "dense"]);
    }

    /// The round-trip guarantee behind `se obs` on `--trace-out` files:
    /// every event kind survives export → parse → invert verbatim, even
    /// through the on-disk text form.
    #[test]
    fn chrome_trace_round_trips_every_event_kind() {
        let a = full_taxonomy_stream();
        let b = vec![Event { at: 2, kind: EventKind::TierHit { instance: 1, model: 0 } }];
        let streams = vec![
            ("se".to_string(), a.clone()),
            ("dense".to_string(), b.clone()),
            ("idle".to_string(), vec![]),
        ];
        let views: Vec<(String, &[Event])> =
            streams.iter().map(|(n, e)| (n.clone(), e.as_slice())).collect();
        let text = chrome_trace(&views).render();
        let reparsed = Json::parse(&text).unwrap();
        let recovered = events_from_chrome_trace(&reparsed).unwrap();
        assert_eq!(recovered, streams, "export → parse → invert must be the identity");
    }

    #[test]
    fn foreign_and_truncated_traces_fail_loudly() {
        let foreign = Json::parse("{\"hello\": 1}\n").unwrap();
        let err = events_from_chrome_trace(&foreign).unwrap_err().to_string();
        assert!(err.contains("traceEvents"), "{err}");

        // An event for a pid the metadata never named: truncation.
        let orphan = Json::parse(
            "{\"traceEvents\": [{\"name\": \"admitted\", \"ph\": \"i\", \"pid\": 7, \
             \"tid\": 0, \"ts\": 0, \"s\": \"t\", \"args\": {\"id\": 0, \"model\": 0}}]}\n",
        )
        .unwrap();
        let err = events_from_chrome_trace(&orphan).unwrap_err().to_string();
        assert!(err.contains("no process for pid 7"), "{err}");

        // A payload field of the wrong type.
        let mistyped = Json::parse(
            "{\"traceEvents\": [{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \
             \"tid\": 0, \"args\": {\"name\": \"l\"}}, {\"name\": \"admitted\", \"ph\": \"i\", \
             \"pid\": 0, \"tid\": 0, \"ts\": 0, \"s\": \"t\", \
             \"args\": {\"id\": \"zero\", \"model\": 0}}]}\n",
        )
        .unwrap();
        let err = events_from_chrome_trace(&mistyped).unwrap_err().to_string();
        assert!(err.contains("missing numeric arg `id`"), "{err}");

        // An instant this exporter never writes.
        let unknown = Json::parse(
            "{\"traceEvents\": [{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \
             \"tid\": 0, \"args\": {\"name\": \"l\"}}, {\"name\": \"gc_pause\", \"ph\": \"i\", \
             \"pid\": 0, \"tid\": 0, \"ts\": 0, \"s\": \"t\", \"args\": {}}]}\n",
        )
        .unwrap();
        let err = events_from_chrome_trace(&unknown).unwrap_err().to_string();
        assert!(err.contains("unknown instant `gc_pause`"), "{err}");
    }

    #[test]
    fn metrics_text_labels_each_stream() {
        let stream = small_stream();
        let text = metrics_text(&[("se".to_string(), stream.as_slice())]);
        assert!(text.contains("se_requests_admitted_total{stream=\"se\"} 1\n"), "{text}");
        assert!(text.contains("se_requests_rejected_total{stream=\"se\"} 1\n"), "{text}");
        assert!(text.contains("se_requests_served_total{stream=\"se\"} 1\n"), "{text}");
        assert!(text.contains("# TYPE se_request_latency_cycles histogram"), "{text}");
        // Two ingests under different labels coexist in one exposition.
        let both = metrics_text(&[
            ("se".to_string(), stream.as_slice()),
            ("dense".to_string(), stream.as_slice()),
        ]);
        assert!(both.contains("se_requests_served_total{stream=\"dense\"} 1\n"), "{both}");
        assert!(both.contains("se_requests_served_total{stream=\"se\"} 1\n"), "{both}");
    }
}
