//! Exporters for the observability layer (`se_obs`): Chrome-trace /
//! Perfetto `traceEvents` JSON and Prometheus-style text exposition,
//! built on the same hand-rolled [`crate::json`] emitter as the bench
//! reports.
//!
//! Both exports are **deterministic renderings of the virtual-time event
//! stream**: the stream is byte-identical across `--sim-parallelism`
//! values and across `--runtime sim|staged` (see `se_serve`'s
//! `tests/obs_stream.rs`), and the exporters add no wall-clock or
//! environment-dependent fields, so the files inherit that byte
//! identity. Load a `--trace-out` file at <https://ui.perfetto.dev> (or
//! `chrome://tracing`); one trace "process" per stream (a cluster lane
//! or a served model), one "thread" per instance, one timestamp tick
//! per virtual cycle.

use std::collections::BTreeSet;

use se_obs::{Event, EventKind, MetricsRegistry};

use crate::json::Json;

/// Builds a Chrome-trace document from named event streams (one trace
/// `pid` per stream, in order — e.g. one per cluster lane). Batch
/// executions become `ph: "X"` duration spans on their instance's
/// thread, queue-depth samples become `ph: "C"` counter tracks, and
/// admission/fault/tier events become `ph: "i"` instants.
/// [`EventKind::Served`] and [`EventKind::BatchFormed`] are folded into
/// metrics instead of the trace (the span already carries the batch;
/// per-request completions would dwarf it).
pub fn chrome_trace(streams: &[(String, &[Event])]) -> Json {
    let mut events = Vec::new();
    for (pid, (label, stream)) in streams.iter().enumerate() {
        events.push(metadata(pid, 0, "process_name", label));
        let tids: BTreeSet<usize> = stream.iter().filter_map(|e| e.kind.instance()).collect();
        for tid in tids {
            events.push(metadata(pid, tid, "thread_name", &format!("instance {tid}")));
        }
    }
    for (pid, (_, stream)) in streams.iter().enumerate() {
        events.extend(stream.iter().filter_map(|event| trace_event(pid, event)));
    }
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
    ])
}

/// Renders named event streams as Prometheus-style text exposition: each
/// stream is folded through [`MetricsRegistry::ingest`] under a
/// `stream="<label>"` label, so lanes stay comparable side by side.
pub fn metrics_text(streams: &[(String, &[Event])]) -> String {
    let mut registry = MetricsRegistry::new();
    for (label, stream) in streams {
        registry.ingest(stream, &[("stream", label)]);
    }
    registry.render()
}

/// Writes `content` to `path` (shared by the `--trace-out` /
/// `--metrics-out` call sites so the error message is uniform).
///
/// # Errors
///
/// Propagates the I/O error, naming the file.
pub fn write_export(path: &std::path::Path, content: &str) -> crate::Result<()> {
    std::fs::write(path, content).map_err(|e| format!("writing {}: {e}", path.display()).into())
}

/// The `--trace-out` / `--metrics-out` epilogue shared by `se serve`,
/// `se cluster`, and `se bench serve`: renders the recorded streams into
/// whichever exports were requested. Confirmation notes go to stderr at
/// info level (`SE_LOG=info`), never stdout — report output stays
/// byte-identical whether or not exports were written.
///
/// # Errors
///
/// Propagates file-write failures.
pub fn write_observability(
    trace_out: Option<&std::path::Path>,
    metrics_out: Option<&std::path::Path>,
    streams: &[(String, Vec<Event>)],
) -> crate::Result<()> {
    let views: Vec<(String, &[Event])> =
        streams.iter().map(|(name, events)| (name.clone(), events.as_slice())).collect();
    if let Some(path) = trace_out {
        write_export(path, &chrome_trace(&views).render())?;
        se_core::se_info!("wrote Chrome-trace JSON to {}", path.display());
    }
    if let Some(path) = metrics_out {
        write_export(path, &metrics_text(&views))?;
        se_core::se_info!("wrote metrics exposition to {}", path.display());
    }
    Ok(())
}

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

fn metadata(pid: usize, tid: usize, name: &str, arg_name: &str) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(name.to_string())),
        ("ph".to_string(), Json::Str("M".to_string())),
        ("pid".to_string(), num(pid as u64)),
        ("tid".to_string(), num(tid as u64)),
        (
            "args".to_string(),
            Json::Obj(vec![("name".to_string(), Json::Str(arg_name.to_string()))]),
        ),
    ])
}

/// One trace event: `Some` span/counter/instant, `None` for the kinds
/// that live in metrics only.
fn trace_event(pid: usize, event: &Event) -> Option<Json> {
    let kind = &event.kind;
    let args = |fields: Vec<(&str, Json)>| {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };
    // Spans and counters first; everything else is an instant.
    match *kind {
        EventKind::Served { .. } | EventKind::BatchFormed { .. } => return None,
        EventKind::BatchLaunched { seq, instance, model, size, done } => {
            return Some(Json::Obj(vec![
                ("name".to_string(), Json::Str(format!("batch m{model} x{size}"))),
                ("ph".to_string(), Json::Str("X".to_string())),
                ("pid".to_string(), num(pid as u64)),
                ("tid".to_string(), num(instance as u64)),
                ("ts".to_string(), num(event.at)),
                ("dur".to_string(), num(done.saturating_sub(event.at))),
                (
                    "args".to_string(),
                    args(vec![
                        ("seq", num(seq)),
                        ("model", num(model as u64)),
                        ("size", num(size as u64)),
                    ]),
                ),
            ]));
        }
        EventKind::QueueDepth { instance, depth } => {
            return Some(Json::Obj(vec![
                ("name".to_string(), Json::Str(format!("queue_depth i{instance}"))),
                ("ph".to_string(), Json::Str("C".to_string())),
                ("pid".to_string(), num(pid as u64)),
                ("tid".to_string(), num(instance as u64)),
                ("ts".to_string(), num(event.at)),
                ("args".to_string(), args(vec![("depth", num(depth as u64))])),
            ]));
        }
        _ => {}
    }
    let details = match *kind {
        EventKind::Admitted { id, model, .. } | EventKind::Rejected { id, model } => {
            vec![("id", num(id as u64)), ("model", num(model as u64))]
        }
        EventKind::Lost { id, model } => {
            vec![("id", num(id as u64)), ("model", num(model as u64))]
        }
        EventKind::BatchCompleted { seq, size, .. } => {
            vec![("seq", num(seq)), ("size", num(size as u64))]
        }
        EventKind::BatchKilled { seq, .. } => vec![("seq", num(seq))],
        EventKind::InstanceKilled { in_flight, rerouted, lost, .. } => {
            vec![("in_flight", num(in_flight)), ("rerouted", num(rerouted)), ("lost", num(lost))]
        }
        EventKind::InstanceRestarted { .. }
        | EventKind::InstanceSpawned { .. }
        | EventKind::InstanceDraining { .. } => vec![],
        EventKind::TierHit { model, .. } => vec![("model", num(model as u64))],
        EventKind::TierPromoted { model, from, cycles, .. } => {
            vec![("model", num(model as u64)), ("from", num(from as u64)), ("cycles", num(cycles))]
        }
        EventKind::TierDemoted { model, to, bytes, .. } => {
            vec![("model", num(model as u64)), ("to", num(to as u64)), ("bytes", num(bytes))]
        }
        EventKind::TierColdFetch { model, cycles, .. }
        | EventKind::TierStreamed { model, cycles, .. } => {
            vec![("model", num(model as u64)), ("cycles", num(cycles))]
        }
        EventKind::StageWall { stage, wall_ns } => {
            vec![("stage", Json::Str(stage.to_string())), ("wall_ns", num(wall_ns))]
        }
        _ => unreachable!("spans and counters are handled above"),
    };
    let (tid, scope) = match kind.instance() {
        Some(instance) => (instance as u64, "t"),
        None => (0, "p"),
    };
    Some(Json::Obj(vec![
        ("name".to_string(), Json::Str(kind.name().to_string())),
        ("ph".to_string(), Json::Str("i".to_string())),
        ("pid".to_string(), num(pid as u64)),
        ("tid".to_string(), num(tid)),
        ("ts".to_string(), num(event.at)),
        ("s".to_string(), Json::Str(scope.to_string())),
        ("args".to_string(), args(details)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_stream() -> Vec<Event> {
        vec![
            Event { at: 0, kind: EventKind::Admitted { id: 0, model: 1, instance: 0 } },
            Event { at: 0, kind: EventKind::QueueDepth { instance: 0, depth: 1 } },
            Event {
                at: 5,
                kind: EventKind::TierPromoted { instance: 0, model: 1, from: 1, cycles: 14 },
            },
            Event {
                at: 5,
                kind: EventKind::BatchLaunched { seq: 0, instance: 0, model: 1, size: 1, done: 25 },
            },
            Event { at: 7, kind: EventKind::Rejected { id: 1, model: 0 } },
            Event { at: 25, kind: EventKind::BatchCompleted { seq: 0, instance: 0, size: 1 } },
            Event {
                at: 25,
                kind: EventKind::Served {
                    id: 0,
                    model: 1,
                    instance: 0,
                    latency: 25,
                    missed: false,
                },
            },
        ]
    }

    /// The golden bytes of a small export: locks the exact on-disk shape
    /// (field order, integer formatting, metadata placement) so any
    /// accidental format drift fails loudly, and proves the render →
    /// parse → render loop is byte-stable.
    #[test]
    fn chrome_trace_golden_bytes_and_round_trip() {
        let stream = vec![
            Event { at: 0, kind: EventKind::Admitted { id: 0, model: 1, instance: 0 } },
            Event {
                at: 5,
                kind: EventKind::BatchLaunched { seq: 0, instance: 0, model: 1, size: 1, done: 25 },
            },
        ];
        let doc = chrome_trace(&[("lane".to_string(), stream.as_slice())]);
        let text = doc.render();
        let golden = concat!(
            "{\n",
            "  \"traceEvents\": [\n",
            "    {\n",
            "      \"name\": \"process_name\",\n",
            "      \"ph\": \"M\",\n",
            "      \"pid\": 0,\n",
            "      \"tid\": 0,\n",
            "      \"args\": {\n",
            "        \"name\": \"lane\"\n",
            "      }\n",
            "    },\n",
            "    {\n",
            "      \"name\": \"thread_name\",\n",
            "      \"ph\": \"M\",\n",
            "      \"pid\": 0,\n",
            "      \"tid\": 0,\n",
            "      \"args\": {\n",
            "        \"name\": \"instance 0\"\n",
            "      }\n",
            "    },\n",
            "    {\n",
            "      \"name\": \"admitted\",\n",
            "      \"ph\": \"i\",\n",
            "      \"pid\": 0,\n",
            "      \"tid\": 0,\n",
            "      \"ts\": 0,\n",
            "      \"s\": \"t\",\n",
            "      \"args\": {\n",
            "        \"id\": 0,\n",
            "        \"model\": 1\n",
            "      }\n",
            "    },\n",
            "    {\n",
            "      \"name\": \"batch m1 x1\",\n",
            "      \"ph\": \"X\",\n",
            "      \"pid\": 0,\n",
            "      \"tid\": 0,\n",
            "      \"ts\": 5,\n",
            "      \"dur\": 20,\n",
            "      \"args\": {\n",
            "        \"seq\": 0,\n",
            "        \"model\": 1,\n",
            "        \"size\": 1\n",
            "      }\n",
            "    }\n",
            "  ],\n",
            "  \"displayTimeUnit\": \"ms\"\n",
            "}\n",
        );
        assert_eq!(text, golden);
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(reparsed.render(), text, "render → parse → render is byte-stable");
    }

    #[test]
    fn every_trace_kind_lands_in_the_right_phase() {
        let stream = small_stream();
        let doc = chrome_trace(&[("l0".to_string(), stream.as_slice())]);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let phase_of = |name: &str| -> Option<&str> {
            events
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .and_then(|e| e.get("ph"))
                .and_then(Json::as_str)
        };
        assert_eq!(phase_of("admitted"), Some("i"));
        assert_eq!(phase_of("rejected"), Some("i"));
        assert_eq!(phase_of("tier_promoted"), Some("i"));
        assert_eq!(phase_of("batch m1 x1"), Some("X"));
        assert_eq!(phase_of("queue_depth i0"), Some("C"));
        // Served stays out of the trace (metrics carry it).
        assert_eq!(phase_of("served"), None);
        // Rejections are process-scoped instants (no instance).
        let rejected = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("rejected"))
            .unwrap();
        assert_eq!(rejected.get("s").and_then(Json::as_str), Some("p"));
        assert_eq!(rejected.get("tid").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn multi_stream_traces_get_one_pid_per_stream() {
        let a = small_stream();
        let b = vec![Event { at: 3, kind: EventKind::TierHit { instance: 2, model: 0 } }];
        let doc =
            chrome_trace(&[("se".to_string(), a.as_slice()), ("dense".to_string(), b.as_slice())]);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let hit = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("tier_hit"))
            .unwrap();
        assert_eq!(hit.get("pid").and_then(Json::as_f64), Some(1.0));
        assert_eq!(hit.get("tid").and_then(Json::as_f64), Some(2.0));
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(names, ["se", "dense"]);
    }

    #[test]
    fn metrics_text_labels_each_stream() {
        let stream = small_stream();
        let text = metrics_text(&[("se".to_string(), stream.as_slice())]);
        assert!(text.contains("se_requests_admitted_total{stream=\"se\"} 1\n"), "{text}");
        assert!(text.contains("se_requests_rejected_total{stream=\"se\"} 1\n"), "{text}");
        assert!(text.contains("se_requests_served_total{stream=\"se\"} 1\n"), "{text}");
        assert!(text.contains("# TYPE se_request_latency_cycles histogram"), "{text}");
        // Two ingests under different labels coexist in one exposition.
        let both = metrics_text(&[
            ("se".to_string(), stream.as_slice()),
            ("dense".to_string(), stream.as_slice()),
        ]);
        assert!(both.contains("se_requests_served_total{stream=\"dense\"} 1\n"), "{both}");
        assert!(both.contains("se_requests_served_total{stream=\"se\"} 1\n"), "{both}");
    }
}
