//! End-to-end determinism of the `se obs` analytics CLI: traces written
//! by the sim and by the staged runtime (at several worker counts) for
//! the same churned, tiered cluster must analyze to byte-identical
//! stdout — summarize, attribute, and diff alike — and a run diffed
//! against itself reports no regression.

use se_bench::args::Flags;
use se_bench::figures::obs;
use se_bench::obs_export::chrome_trace;
use se_obs::{Event, Recorder};
use se_serve::cluster::{
    simulate_cluster_run_obs, ClusterSpec, ModelService, RouterPolicy, TierSpec,
};
use se_serve::fault::{FaultAction, FaultEvent, FaultPlan};
use se_serve::queue::BatchPolicy;
use se_serve::workload::Request;
use se_serve::{run_cluster_staged_obs, NoWork, StagedConfig};
use std::path::PathBuf;

fn service(name: &str, base: u64, per: u64, max_batch: usize, footprint: u64) -> ModelService {
    let streamed: Vec<u64> = (1..=max_batch as u64).map(|k| base + per * k).collect();
    let resident: Vec<u64> = streamed.iter().map(|c| c - c / 4).collect();
    ModelService {
        name: name.into(),
        streamed,
        resident,
        footprint_bytes: footprint,
        switch_cycles: base / 2,
    }
}

fn spec(churned: bool) -> ClusterSpec {
    ClusterSpec {
        instances: 4,
        router: RouterPolicy::RoundRobin,
        policy: BatchPolicy { max_batch: 4, max_wait: 120, queue_cap: 16 },
        buffer_bytes: None,
        tiers: Some(vec![
            TierSpec::new("buf", 1700, 64.0),
            TierSpec::new("dram", 6800, 8.0),
            TierSpec::new("ssd", 27_200, 1.0),
        ]),
        faults: if churned {
            FaultPlan {
                events: vec![
                    FaultEvent { at: 2_500, instance: 1, action: FaultAction::Kill },
                    FaultEvent { at: 15_000, instance: 1, action: FaultAction::Restart },
                ],
                autoscale: None,
            }
        } else {
            FaultPlan::default()
        },
    }
}

fn workload() -> Vec<Request> {
    (0..120)
        .map(|i| Request {
            model: (i % 2) as usize,
            arrival: i * 180,
            deadline: Some(i * 180 + 1500),
        })
        .collect()
}

fn write_trace(name: &str, events: &[Event]) -> PathBuf {
    let streams = [("se".to_string(), events)];
    let path = std::env::temp_dir().join(format!("se-obs-cli-{}-{name}.json", std::process::id()));
    std::fs::write(&path, chrome_trace(&streams).render()).unwrap();
    path
}

fn analyzer_stdout(action: &str, paths: &[&PathBuf], extra: &[&str]) -> String {
    let mut rest: Vec<String> = vec![action.to_string()];
    rest.extend(paths.iter().map(|p| p.display().to_string()));
    rest.extend(extra.iter().map(|s| (*s).to_string()));
    let flags = Flags::from_args(rest.iter().cloned());
    let mut out = Vec::new();
    obs::run(&rest, &flags, &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

#[test]
fn analyzer_output_is_byte_identical_across_runtimes_and_workers() {
    let requests = workload();
    let services = [service("se", 200, 40, 4, 300), service("dense", 260, 50, 4, 1600)];
    let spec = spec(true);

    let mut sim_rec = Recorder::new();
    simulate_cluster_run_obs(&requests, &services, &spec, &mut sim_rec).unwrap();
    let sim_trace = write_trace("sim", sim_rec.events());

    let mut traces = vec![sim_trace];
    for workers in [1usize, 4] {
        let cfg = StagedConfig { exec_workers: workers, channel_cap: 2, chunk: 5 };
        let mut rec = Recorder::new();
        run_cluster_staged_obs(&requests, &services, &spec, &cfg, &NoWork, &mut rec).unwrap();
        traces.push(write_trace(&format!("staged{workers}"), rec.events()));
    }

    // The trace files are byte-identical, so every analysis over them
    // must be too — but assert at the analyzer level anyway: this is the
    // surface CI compares.
    let mut summaries = Vec::new();
    let mut attributions = Vec::new();
    for path in &traces {
        summaries.push(
            analyzer_stdout("summarize", &[path], &["--window-us", "200"])
                .replace(&path.display().to_string(), "<trace>"),
        );
        attributions.push(
            analyzer_stdout("attribute", &[path], &[])
                .replace(&path.display().to_string(), "<trace>"),
        );
    }
    for s in &summaries[1..] {
        assert_eq!(s, &summaries[0], "summarize diverged across runtimes/workers");
    }
    for a in &attributions[1..] {
        assert_eq!(a, &attributions[0], "attribute diverged across runtimes/workers");
    }
    assert!(summaries[0].contains("conservation ok"), "{}", summaries[0]);

    // The churned run's misses attribute to real causes; the kill's
    // victims show up as lost or rerouted lifetimes, not phantoms.
    assert!(attributions[0].contains("missed"), "{}", attributions[0]);

    for path in &traces {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn self_diff_is_zero_and_healthy_vs_churned_names_a_regressor() {
    let requests = workload();
    let services = [service("se", 200, 40, 4, 300), service("dense", 260, 50, 4, 1600)];

    let mut healthy_rec = Recorder::new();
    simulate_cluster_run_obs(&requests, &services, &spec(false), &mut healthy_rec).unwrap();
    let healthy = write_trace("healthy", healthy_rec.events());

    let mut churned_rec = Recorder::new();
    simulate_cluster_run_obs(&requests, &services, &spec(true), &mut churned_rec).unwrap();
    let churned = write_trace("churned", churned_rec.events());

    let same = analyzer_stdout("diff", &[&healthy, &healthy], &[]);
    assert!(same.contains("no window-level changes"), "{same}");
    assert!(same.contains("dominant regressor: none"), "{same}");
    assert!(same.contains("largest goodput drop: none"), "{same}");

    let regressed = analyzer_stdout("diff", &[&healthy, &churned], &["--window-us", "10"]);
    assert!(regressed.contains("dominant regressor:"), "{regressed}");
    assert!(!regressed.contains("dominant regressor: none"), "{regressed}");

    for path in [healthy, churned] {
        std::fs::remove_file(&path).ok();
    }
}
