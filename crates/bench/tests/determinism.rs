//! Cross-worker-count determinism of the five-accelerator comparison on a
//! real repeated-geometry profile: the opening of ResNet164, whose
//! bottleneck shapes repeat and therefore hit every accelerator's
//! geometry-keyed schedule cache. The `(layer, accelerator)` grid of
//! `se_bench::runner` must produce bit-identical `RunResult`s for every
//! worker count at both parallelism levels.

use se_bench::runner::{compare_model, RunnerOptions};
use se_ir::{Dataset, LayerDesc, LayerKind, NetworkDesc};
use se_models::zoo;

/// conv1 plus the first two bottlenecks of ResNet164 (7 layers, with the
/// 16→64→16 shapes of block 2 repeating block 1's), followed by a
/// squeeze-excite layer so the SCNN lane goes `None` mid-network.
fn resnet_profile_with_se() -> NetworkDesc {
    let full = zoo::resnet164();
    let mut layers: Vec<LayerDesc> = full.layers()[..7].to_vec();
    let (h, w) = layers.last().unwrap().input_hw();
    layers.push(LayerDesc::new(
        "se_tail",
        LayerKind::SqueezeExcite { channels: 16, reduced: 4 },
        (h, w),
    ));
    NetworkDesc::new("ResNet164-head", Dataset::Cifar10, layers).unwrap()
}

#[test]
fn comparison_is_bit_identical_across_worker_counts() {
    let net = resnet_profile_with_se();
    let serial = compare_model(&net, &RunnerOptions::fast().with_parallelism(1).unwrap()).unwrap();
    // The None lane must be exercised, not just empty-supported.
    assert!(serial.runs[1].is_none(), "SCNN must drop the squeeze-excite profile");
    for lane in [0usize, 2, 3, 4] {
        assert!(serial.runs[lane].is_some(), "lane {lane} runs");
    }
    for workers in [4usize, 8] {
        let parallel =
            compare_model(&net, &RunnerOptions::fast().with_parallelism(workers).unwrap()).unwrap();
        assert_eq!(serial.runs, parallel.runs, "workers = {workers}");
    }
}
