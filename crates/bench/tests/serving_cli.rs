//! End-to-end guarantees of the serving subcommands:
//!
//! * `se batch` at batch = 1 is byte-identical to the single-image
//!   protocol behind `se fig10` (same per-image `RunResult`s, bit for
//!   bit);
//! * weight-DRAM-accesses/image and energy/image decrease monotonically
//!   with the batch size for the SmartExchange accelerator;
//! * `se serve` output is bit-identical across worker counts;
//! * both subcommands replay `--traces-dir` artifacts byte-identically.

use se_bench::args::Flags;
use se_bench::{figures, runner};
use se_hw::{EnergyModel, SeAcceleratorConfig};
use se_ir::{Dataset, LayerDesc, LayerKind, NetworkDesc};
use se_models::traces;
use se_serve::{BatchEngine, SE_LANE};

fn conv(name: &str, ci: usize, co: usize, hw: usize) -> LayerDesc {
    LayerDesc::new(
        name,
        LayerKind::Conv2d { in_channels: ci, out_channels: co, kernel: 3, stride: 1, padding: 1 },
        (hw, hw),
    )
}

/// Repeated geometries plus a squeeze-excite layer (SCNN `None` lane).
fn model_set() -> Vec<NetworkDesc> {
    vec![
        NetworkDesc::new(
            "alpha",
            Dataset::Cifar10,
            vec![conv("a1", 3, 8, 8), conv("a2", 8, 8, 8), conv("a3", 8, 8, 8)],
        )
        .unwrap(),
        NetworkDesc::new(
            "beta",
            Dataset::Cifar10,
            vec![
                conv("b1", 3, 8, 8),
                LayerDesc::new("se1", LayerKind::SqueezeExcite { channels: 8, reduced: 2 }, (8, 8)),
                conv("b2", 8, 4, 8),
            ],
        )
        .unwrap(),
    ]
}

#[test]
fn batch_one_matches_the_fig10_single_image_protocol() {
    let flags = Flags::default();
    let opts = flags.runner_options().unwrap();
    for net in &model_set() {
        let pairs = traces::trace_pairs(net, &opts.traces).unwrap();
        // The per-image runs behind fig10/11/12.
        let fig10 = runner::compare_pairs(net.name(), &pairs, &opts).unwrap();
        // The per-image runs behind se batch.
        let engine = BatchEngine::new(opts.se_cfg.clone(), opts.baseline_cfg.clone()).unwrap();
        let per_image = engine.per_image_comparison(&pairs, opts.sim_parallelism).unwrap();
        assert_eq!(per_image, fig10.runs, "{}: engines must agree per image", net.name());
        // batch = 1 reproduces them bit for bit, on every lane.
        for (lane, run) in per_image.iter().enumerate() {
            if let Some(run) = run {
                assert_eq!(&engine.batched(lane, run, 1), run, "lane {lane}");
            }
        }
    }
}

#[test]
fn weight_dram_and_energy_per_image_decrease_monotonically() {
    let flags = Flags::default();
    let opts = flags.runner_options().unwrap();
    let em = EnergyModel::default();
    let ecfg = SeAcceleratorConfig::default();
    for net in &model_set() {
        let pairs = traces::trace_pairs(net, &opts.traces).unwrap();
        let engine = BatchEngine::new(opts.se_cfg.clone(), opts.baseline_cfg.clone()).unwrap();
        let per_image = engine.per_image_se(&pairs, opts.sim_parallelism).unwrap();
        let mut prev_weight = f64::INFINITY;
        let mut prev_energy = f64::INFINITY;
        for n in [1usize, 4, 16] {
            let b = engine.batched(SE_LANE, &per_image, n);
            let weight = figures::batch::weight_dram_per_image(&b, n);
            let energy = b.energy_mj(&em, &ecfg) / n as f64;
            assert!(weight < prev_weight, "{}: weight/img at batch {n}", net.name());
            assert!(energy < prev_energy, "{}: energy/img at batch {n}", net.name());
            prev_weight = weight;
            prev_energy = energy;
        }
    }
}

fn serve_output(flags: &Flags, models: &[NetworkDesc]) -> String {
    let mut out = Vec::new();
    figures::serve::run_with_models(flags, models, &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

fn batch_output(flags: &Flags, models: &[NetworkDesc]) -> String {
    let mut out = Vec::new();
    figures::batch::run_with_models(flags, models, &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

#[test]
fn serve_output_is_bit_identical_across_worker_counts() {
    let models = model_set();
    let base = Flags { requests: Some(64), arrival: Some("burst".into()), ..Flags::default() };
    let serial = serve_output(&Flags { sim_parallelism: Some(1), ..base.clone() }, &models);
    assert!(serial.contains("throughput img/s"), "{serial}");
    for workers in [4usize, 8] {
        let parallel =
            serve_output(&Flags { sim_parallelism: Some(workers), ..base.clone() }, &models);
        assert_eq!(serial, parallel, "workers = {workers}");
    }
    // Closed-loop path too.
    let closed = Flags { arrival: Some("closed".into()), ..base };
    assert_eq!(
        serve_output(&Flags { sim_parallelism: Some(1), ..closed.clone() }, &models),
        serve_output(&Flags { sim_parallelism: Some(4), ..closed }, &models),
    );
}

#[test]
fn batch_and_serve_replay_trace_artifacts_byte_identically() {
    let models = model_set();
    let dir = std::env::temp_dir().join(format!("se-serving-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let direct_flags =
        Flags { batch_sizes: Some(vec![1, 4, 16]), requests: Some(48), ..Flags::default() };
    let direct_batch = batch_output(&direct_flags, &models);
    assert!(direct_batch.contains("alpha") && direct_batch.contains("beta"));
    assert!(direct_batch.contains("n/a"), "SCNN lane must be n/a on beta:\n{direct_batch}");
    let direct_serve = serve_output(&direct_flags, &models);

    let opts = direct_flags.runner_options().unwrap().traces;
    for net in &models {
        traces::build_trace_file(net, &opts, &dir).unwrap();
    }
    let cached_flags = Flags { traces_dir: Some(dir.clone()), ..direct_flags };
    assert_eq!(direct_batch, batch_output(&cached_flags, &models));
    assert_eq!(direct_serve, serve_output(&cached_flags, &models));
    std::fs::remove_dir_all(&dir).unwrap();
}
