//! End-to-end guarantees of the persisted-trace pipeline: a figure run
//! that replays `--traces-dir` artifacts must produce **byte-identical**
//! output to the direct (uncached) run — the whole point of trading the
//! regeneration cost for a file read is that nothing else changes.

use se_bench::args::Flags;
use se_bench::{cli, figures};
use se_ir::{Dataset, LayerDesc, LayerKind, NetworkDesc};
use se_models::traces;

/// A small two-model set exercising repeated geometries and the SCNN
/// `None` lane (squeeze-excite).
fn model_set() -> Vec<NetworkDesc> {
    let conv = |name: &str, ci: usize, co: usize, hw: usize| {
        LayerDesc::new(
            name,
            LayerKind::Conv2d {
                in_channels: ci,
                out_channels: co,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            (hw, hw),
        )
    };
    vec![
        NetworkDesc::new(
            "alpha",
            Dataset::Cifar10,
            vec![conv("a1", 3, 8, 8), conv("a2", 8, 8, 8), conv("a3", 8, 8, 8)],
        )
        .unwrap(),
        NetworkDesc::new(
            "beta",
            Dataset::Cifar10,
            vec![
                conv("b1", 3, 8, 8),
                LayerDesc::new("se1", LayerKind::SqueezeExcite { channels: 8, reduced: 2 }, (8, 8)),
                conv("b2", 8, 4, 8),
            ],
        )
        .unwrap(),
    ]
}

fn fig10_output(flags: &Flags, models: &[NetworkDesc]) -> String {
    let mut out = Vec::new();
    figures::fig10::run_with_models(flags, models, &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

#[test]
fn fig10_cache_warm_output_is_byte_identical_to_direct() {
    let models = model_set();
    let dir = std::env::temp_dir().join(format!("se-fig10-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let direct_flags = Flags::default();
    let direct = fig10_output(&direct_flags, &models);
    assert!(direct.contains("Fig. 10"));
    assert!(direct.contains("alpha") && direct.contains("beta"));
    assert!(direct.contains("n/a"), "SCNN lane must be n/a on beta:\n{direct}");

    // `se trace build` equivalent for the custom model set.
    let opts = direct_flags.runner_options().unwrap().traces;
    for net in &models {
        traces::build_trace_file(net, &opts, &dir).unwrap();
    }

    let cached_flags = Flags { traces_dir: Some(dir.clone()), ..Flags::default() };
    let cached = fig10_output(&cached_flags, &models);
    assert_eq!(direct, cached, "cache-warm fig10 output must be byte-identical");

    // Cold cache on changed options: falls back to direct generation and
    // still matches (a different seed is a different figure, but must be
    // deterministic between its own cached/uncached runs).
    let seeded = Flags { seed: 3, traces_dir: Some(dir.clone()), ..Flags::default() };
    let seeded_direct = Flags { seed: 3, ..Flags::default() };
    assert_eq!(fig10_output(&seeded, &models), fig10_output(&seeded_direct, &models));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn table2_compression_artifacts_replay_byte_identically() {
    // MLP-2 is the one cheap entry in Table II; the compression-side
    // artifact cache must be invisible in the output: direct run, cache-
    // populating run, and cache-warm replay all byte-identical.
    let dir = std::env::temp_dir().join(format!("se-table2-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let run = |flags: &Flags| {
        let mut out = Vec::new();
        figures::table2::run(flags, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    };
    let select = Flags { models: Some(vec!["MLP-2".into()]), ..Flags::default() };
    let direct = run(&select);
    assert!(direct.contains("MLP-2"));
    let cached_flags = Flags { traces_dir: Some(dir.clone()), ..select };
    let populating = run(&cached_flags);
    assert_eq!(direct, populating, "cache-populating run must match direct");
    let senet: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("senet"))
        .collect();
    assert_eq!(senet.len(), 1, "one compressed-network artifact written");
    let warm = run(&cached_flags);
    assert_eq!(direct, warm, "cache-warm replay must match direct");

    // `se trace info` lists the compression artifact alongside traces.
    let mut out = Vec::new();
    cli::run_from_args(
        &["trace".into(), "info".into(), "--traces-dir".into(), dir.display().to_string()],
        &mut out,
    )
    .unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("compressed-network artifacts"), "{text}");
    assert!(text.contains(".senet"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn trace_subcommand_validates_its_arguments() {
    let mut out = Vec::new();
    let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    // No action.
    let err = cli::run_from_args(&args(&["trace"]), &mut out).unwrap_err();
    assert!(err.to_string().contains("build|info"), "{err}");
    // Missing --traces-dir.
    let err = cli::run_from_args(&args(&["trace", "build"]), &mut out).unwrap_err();
    assert!(err.to_string().contains("--traces-dir"), "{err}");
    // Unknown models with a traces dir: build refuses to do nothing.
    let dir = std::env::temp_dir().join(format!("se-trace-none-{}", std::process::id()));
    let err = cli::run_from_args(
        &args(&["trace", "build", "--traces-dir", dir.to_str().unwrap(), "--models", "nope"]),
        &mut out,
    )
    .unwrap_err();
    assert!(err.to_string().contains("no models"), "{err}");
}

#[test]
fn trace_info_tabulates_artifacts() {
    let models = model_set();
    let dir = std::env::temp_dir().join(format!("se-trace-info-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = Flags::default().runner_options().unwrap().traces;
    for net in &models {
        traces::build_trace_file(net, &opts, &dir).unwrap();
    }
    let mut out = Vec::new();
    cli::run_from_args(
        &["trace".into(), "info".into(), "--traces-dir".into(), dir.display().to_string()],
        &mut out,
    )
    .unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("alpha") && text.contains("beta"), "{text}");
    assert!(text.contains(".setrace"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}
