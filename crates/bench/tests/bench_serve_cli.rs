//! End-to-end guarantees of `se bench serve`:
//!
//! * a small sweep produces a `BENCH_serve.json` that parses and passes
//!   the schema check (the CI dry-run contract);
//! * the sweep covers both runtimes and every requested worker count,
//!   and every staged entry matched the sim (a divergence fails the
//!   command, so a written file implies outcome equality);
//! * conflicting flags (`--runtime`, `--exec-workers`) error loudly;
//! * `se bench` without a valid action errors with usage.

use se_bench::args::Flags;
use se_bench::figures::bench_serve;
use se_bench::json::Json;
use se_ir::{Dataset, LayerDesc, LayerKind, NetworkDesc};

fn conv(name: &str, ci: usize, co: usize, hw: usize) -> LayerDesc {
    LayerDesc::new(
        name,
        LayerKind::Conv2d { in_channels: ci, out_channels: co, kernel: 3, stride: 1, padding: 1 },
        (hw, hw),
    )
}

fn model_set() -> Vec<NetworkDesc> {
    vec![
        NetworkDesc::new("alpha", Dataset::Cifar10, vec![conv("a1", 3, 8, 8), conv("a2", 8, 8, 8)])
            .unwrap(),
        NetworkDesc::new("beta", Dataset::Cifar10, vec![conv("b1", 3, 16, 8)]).unwrap(),
    ]
}

#[test]
fn dry_run_emits_a_valid_schema_checked_report() {
    let path = std::env::temp_dir().join(format!("se-bench-serve-{}.json", std::process::id()));
    let flags = Flags {
        requests: Some(300),
        workers: Some(vec![1, 2]),
        instances: Some(2),
        buffer_kb: Some(2.0),
        bench_out: Some(path.clone()),
        ..Flags::default()
    };
    let mut out = Vec::new();
    bench_serve::run_with_models(&flags, &model_set(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("wrote"), "{text}");

    let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    bench_serve::validate_report(&doc).unwrap();
    assert_eq!(doc.get("requests_per_config").unwrap().as_f64(), Some(300.0));
    let configs = doc.get("configs").unwrap().as_array().unwrap();
    // instances pinned to {2} x routers {rr, jsq} x max_batch {1, 8} x
    // churn {none, kill-restart} (multi-instance configs get the churn
    // axis) x memory {flat, tiered}, each measured as sim + staged x
    // {1, 2} workers = 3 runtime entries.
    assert_eq!(configs.len(), 2 * 2 * 2 * 2 * 3, "sweep shape");
    let sims = configs.iter().filter(|c| c.get("runtime").unwrap().as_str() == Some("sim"));
    assert_eq!(sims.count(), 16);
    for workers in [1.0, 2.0] {
        let staged = configs.iter().filter(|c| {
            c.get("runtime").unwrap().as_str() == Some("staged")
                && c.get("exec_workers").unwrap().as_f64() == Some(workers)
        });
        assert_eq!(staged.count(), 16, "staged entries at {workers} worker(s)");
    }
    // The memory axis is the other half of the sweep: every tiered config
    // carries a per-tier traffic array, every flat one a null.
    let tiered: Vec<_> =
        configs.iter().filter(|c| c.get("memory").unwrap().as_str() == Some("tiered")).collect();
    assert_eq!(tiered.len(), configs.len() / 2);
    for c in &tiered {
        let tiers = c.get("tiers").unwrap().as_array().unwrap();
        assert_eq!(tiers.len(), 3, "derived default stack is buf/dram/ssd");
        assert_eq!(tiers[0].get("name").unwrap().as_str(), Some("buf"));
    }
    assert!(
        tiered.iter().any(|c| {
            let tiers = c.get("tiers").unwrap().as_array().unwrap();
            tiers.iter().any(|t| t.get("hits").unwrap().as_f64() > Some(0.0))
                && tiers.last().unwrap().get("up_mb").unwrap().as_f64() > Some(0.0)
        }),
        "tiered configs must show tier traffic (top-tier hits and bottom-tier bytes up)"
    );
    for c in configs.iter().filter(|c| c.get("memory").unwrap().as_str() == Some("flat")) {
        assert_eq!(c.get("tiers"), Some(&Json::Null));
    }
    // The churn axis is half the sweep, and churned configs account for
    // the kill: a killed batch or a re-route must actually show up
    // (the kill lands mid-run by construction).
    let churned: Vec<_> = configs
        .iter()
        .filter(|c| c.get("churn").unwrap().as_str() == Some("kill-restart"))
        .collect();
    assert_eq!(churned.len(), configs.len() / 2);
    assert!(
        churned.iter().any(|c| c.get("rerouted").unwrap().as_f64() > Some(0.0)
            || c.get("killed_batches").unwrap().as_f64() > Some(0.0)),
        "churned configs must show fault activity"
    );
    // The mixed two-model stream through a small buffer exercises the
    // residency lane of the report.
    assert!(
        configs.iter().any(|c| c.get("weight_fetches").unwrap().as_f64() > Some(0.0)),
        "residency traffic must appear in the report"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn conflicting_flags_error_loudly() {
    let mut out = Vec::new();
    let err = bench_serve::run_with_models(
        &Flags { runtime: Some("staged".into()), ..Flags::default() },
        &model_set(),
        &mut out,
    )
    .unwrap_err();
    assert!(err.to_string().contains("--runtime does not apply"), "{err}");

    let err = bench_serve::run_with_models(
        &Flags { exec_workers: Some(4), ..Flags::default() },
        &model_set(),
        &mut out,
    )
    .unwrap_err();
    assert!(err.to_string().contains("--workers"), "{err}");

    let err = bench_serve::run_with_models(&Flags::default(), &[], &mut out).unwrap_err();
    assert!(err.to_string().contains("at least one model"), "{err}");
}

#[test]
fn bench_without_a_valid_action_errors_with_usage() {
    let mut out = Vec::new();
    let rest: Vec<String> = vec!["--requests".into(), "10".into()];
    let err = bench_serve::run(&rest, &Flags::default(), &mut out).unwrap_err();
    assert!(err.to_string().contains("se bench <serve|diff>"), "{err}");
    // A flag value that looks like an action must not be taken for one.
    let rest: Vec<String> = vec!["--bench-out".into(), "serve".into()];
    let err = bench_serve::run(&rest, &Flags::default(), &mut out).unwrap_err();
    assert!(err.to_string().contains("no action"), "{err}");
    // `diff` needs exactly two snapshot paths.
    let rest: Vec<String> = vec!["diff".into(), "one.json".into()];
    let err = bench_serve::run(&rest, &Flags::default(), &mut out).unwrap_err();
    assert!(err.to_string().contains("se bench diff <baseline.json>"), "{err}");
}
