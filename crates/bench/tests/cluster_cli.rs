//! End-to-end guarantees of `se cluster`:
//!
//! * output is **bit-identical across worker counts** (the determinism
//!   contract shared with `se serve`);
//! * `--traces-dir` artifacts replay byte-identically;
//! * the SmartExchange lane and the `n/a` handling of unsupported lanes
//!   (SCNN on squeeze-excite models) render in the lane table;
//! * `se serve` reports the shared p50/p95/p99 + deadline columns.

use se_bench::args::Flags;
use se_bench::figures;
use se_ir::{Dataset, LayerDesc, LayerKind, NetworkDesc};
use se_models::traces;

fn conv(name: &str, ci: usize, co: usize, hw: usize) -> LayerDesc {
    LayerDesc::new(
        name,
        LayerKind::Conv2d { in_channels: ci, out_channels: co, kernel: 3, stride: 1, padding: 1 },
        (hw, hw),
    )
}

/// Two small models — one with a squeeze-excite layer, so the SCNN lane is
/// `n/a` for the whole mixed workload.
fn model_set() -> Vec<NetworkDesc> {
    vec![
        NetworkDesc::new(
            "alpha",
            Dataset::Cifar10,
            vec![conv("a1", 3, 8, 8), conv("a2", 8, 8, 8), conv("a3", 8, 8, 8)],
        )
        .unwrap(),
        NetworkDesc::new(
            "beta",
            Dataset::Cifar10,
            vec![
                conv("b1", 3, 8, 8),
                LayerDesc::new("se1", LayerKind::SqueezeExcite { channels: 8, reduced: 2 }, (8, 8)),
                conv("b2", 8, 4, 8),
            ],
        )
        .unwrap(),
    ]
}

fn cluster_output(flags: &Flags, models: &[NetworkDesc]) -> String {
    let mut out = Vec::new();
    figures::cluster::run_with_models(flags, models, &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

fn cluster_flags() -> Flags {
    Flags {
        requests: Some(48),
        instances: Some(2),
        router: Some("affinity".into()),
        deadline_us: Some(5.0),
        buffer_kb: Some(2.0),
        ..Flags::default()
    }
}

#[test]
fn cluster_output_is_bit_identical_across_worker_counts() {
    let models = model_set();
    let base = cluster_flags();
    let serial = cluster_output(&Flags { sim_parallelism: Some(1), ..base.clone() }, &models);
    assert!(serial.contains("SmartExchange"), "{serial}");
    assert!(serial.contains("weight footprint per model"), "{serial}");
    assert!(serial.contains("goodput img/s"), "{serial}");
    let scnn_row = serial.lines().find(|l| l.trim_start().starts_with("SCNN")).unwrap();
    assert!(scnn_row.contains("n/a"), "SCNN lane must be n/a on the squeeze-excite mix");
    for workers in [4usize, 8] {
        let parallel =
            cluster_output(&Flags { sim_parallelism: Some(workers), ..base.clone() }, &models);
        assert_eq!(serial, parallel, "workers = {workers}");
    }
    // Every router and the no-deadline / no-buffer paths stay
    // deterministic too.
    for router in ["rr", "jsq"] {
        let flags = Flags {
            router: Some(router.into()),
            deadline_us: None,
            buffer_kb: None,
            ..base.clone()
        };
        assert_eq!(
            cluster_output(&Flags { sim_parallelism: Some(1), ..flags.clone() }, &models),
            cluster_output(&Flags { sim_parallelism: Some(4), ..flags }, &models),
            "router {router}"
        );
    }
}

#[test]
fn cluster_with_churn_prints_the_timeline_and_stays_deterministic() {
    let models = model_set();
    let base = Flags {
        kill: vec!["0@50".into()],
        restart: vec!["0@200".into()],
        autoscale: Some("64:1".into()),
        ..cluster_flags()
    };
    let churned = cluster_output(&base, &models);
    assert!(churned.contains("faults: kill inst 0 @ 50000 cycles"), "{churned}");
    assert!(churned.contains("restart inst 0 @ 200000 cycles"), "{churned}");
    assert!(churned.contains("autoscale: spawn above 64"), "{churned}");
    assert!(churned.contains("rerouted"), "lane table gains the churn columns: {churned}");
    assert!(churned.contains("fault timeline and conservation accounting"), "{churned}");
    assert!(churned.contains("== 48 submitted (ok)"), "{churned}");
    assert!(!churned.contains("VIOLATED"), "{churned}");
    // Churn is part of the determinism contract: byte-identical across
    // worker counts and across runtimes.
    let parallel = cluster_output(&Flags { sim_parallelism: Some(4), ..base.clone() }, &models);
    assert_eq!(churned, parallel);
    let staged = cluster_output(
        &Flags { runtime: Some("staged".into()), exec_workers: Some(3), ..base.clone() },
        &models,
    );
    assert_eq!(churned, staged);
    // Fault-free output carries no churn prose (stdout stays identical to
    // the pre-fault-injection format except for the two new columns).
    let healthy = cluster_output(&cluster_flags(), &models);
    assert!(!healthy.contains("fault timeline"), "{healthy}");
    assert!(!healthy.contains("faults:"), "{healthy}");

    // A kill without a matching restart history errors loudly, as does a
    // kill aimed past the instance count.
    let bad = Flags { restart: vec!["1@10".into()], ..cluster_flags() };
    let mut out = Vec::new();
    let err = figures::cluster::run_with_models(&bad, &models, &mut out).unwrap_err();
    assert!(err.to_string().contains("restart"), "{err}");
    let bad = Flags { kill: vec!["9@10".into()], ..cluster_flags() };
    let err = figures::cluster::run_with_models(&bad, &models, &mut out).unwrap_err();
    assert!(err.to_string().contains("instance"), "{err}");
}

#[test]
fn cluster_trace_export_is_deterministic_and_perfetto_shaped() {
    let models = model_set();
    let tag = std::process::id();
    let trace = std::env::temp_dir().join(format!("se-cluster-trace-{tag}.json"));
    let metrics = std::env::temp_dir().join(format!("se-cluster-metrics-{tag}.prom"));
    let base = Flags {
        kill: vec!["0@50".into()],
        restart: vec!["0@200".into()],
        tiers: Some("buf:2kb:16,dram:1mb:4,ssd:1gb:1".into()),
        buffer_kb: None,
        trace_out: Some(trace.clone()),
        metrics_out: Some(metrics.clone()),
        ..cluster_flags()
    };
    // Observing must not perturb stdout: the lane tables stay
    // byte-identical to a tracing-off run.
    let observed_stdout = cluster_output(&base, &models);
    let plain_stdout =
        cluster_output(&Flags { trace_out: None, metrics_out: None, ..base.clone() }, &models);
    assert_eq!(observed_stdout, plain_stdout, "--trace-out must not change stdout");

    let trace_text = std::fs::read_to_string(&trace).unwrap();
    let doc = se_bench::json::Json::parse(&trace_text).unwrap();
    let events = doc.get("traceEvents").and_then(se_bench::json::Json::as_array).unwrap();
    assert!(!events.is_empty(), "trace must carry events");
    // The churned tiered run tells the whole story: batch spans, fault
    // instants, and per-tier admission events.
    for needle in ["\"ph\": \"X\"", "instance_killed", "instance_restarted", "tier_"] {
        assert!(trace_text.contains(needle), "trace must contain `{needle}`:\n{trace_text}");
    }
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    assert!(metrics_text.contains("se_requests_admitted_total"), "{metrics_text}");

    // The export itself is part of the determinism contract: byte-identical
    // across worker counts and across runtimes.
    for flags in [
        Flags { sim_parallelism: Some(4), ..base.clone() },
        Flags { runtime: Some("staged".into()), exec_workers: Some(3), ..base.clone() },
    ] {
        cluster_output(&flags, &models);
        assert_eq!(std::fs::read_to_string(&trace).unwrap(), trace_text);
        assert_eq!(std::fs::read_to_string(&metrics).unwrap(), metrics_text);
    }
    std::fs::remove_file(&trace).unwrap();
    std::fs::remove_file(&metrics).unwrap();
}

#[test]
fn serve_rejects_fault_flags() {
    let models = vec![model_set().remove(0)];
    let flags = Flags { kill: vec!["0@10".into()], ..Flags::default() };
    let mut out = Vec::new();
    let err = figures::serve::run_with_models(&flags, &models, &mut out).unwrap_err();
    assert!(err.to_string().contains("se cluster"), "{err}");
}

#[test]
fn cluster_replays_trace_artifacts_byte_identically() {
    let models = model_set();
    let dir = std::env::temp_dir().join(format!("se-cluster-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let direct = cluster_output(&cluster_flags(), &models);
    let opts = cluster_flags().runner_options().unwrap().traces;
    for net in &models {
        traces::build_trace_file(net, &opts, &dir).unwrap();
    }
    let cached =
        cluster_output(&Flags { traces_dir: Some(dir.clone()), ..cluster_flags() }, &models);
    assert_eq!(direct, cached);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn serve_reports_the_shared_latency_and_deadline_columns() {
    let models = vec![model_set().remove(0)];
    let flags = Flags { requests: Some(32), deadline_us: Some(5.0), ..Flags::default() };
    let mut out = Vec::new();
    figures::serve::run_with_models(&flags, &models, &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    for needle in
        ["latency p50 ms", "latency p95 ms", "latency p99 ms", "deadline missed", "miss %"]
    {
        assert!(text.contains(needle), "serve output must report `{needle}`:\n{text}");
    }
    assert!(text.contains("deadline 5000 cycles/request"), "{text}");
    // Without a deadline the miss cells degrade to n/a, not to absence.
    let mut out = Vec::new();
    figures::serve::run_with_models(&Flags { deadline_us: None, ..flags }, &models, &mut out)
        .unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("deadline missed"), "{text}");
    assert!(text.contains("n/a"), "{text}");
    assert!(text.contains("best effort (no deadline)"), "{text}");
}
