//! The bench-snapshot regression layer:
//!
//! * a committed golden `BENCH_serve.json` fixture must stay
//!   render→parse→render **byte-stable** (the emitter and parser are a
//!   fixed point on their own output) and pass the current schema;
//! * `se bench diff` accepts identical snapshots, and fails loudly on
//!   schema drift, config-set drift, and >2x throughput swings — the
//!   three ways a perf snapshot silently rots.

use se_bench::figures::bench_serve;
use se_bench::json::Json;

const GOLDEN: &str = include_str!("fixtures/bench_serve_golden.json");

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("se-bench-snap-{tag}-{}.json", std::process::id()))
}

#[test]
fn golden_fixture_is_schema_valid_and_render_parse_render_byte_stable() {
    let doc = Json::parse(GOLDEN).unwrap();
    bench_serve::validate_report(&doc).unwrap();
    // One round trip reproduces the committed bytes exactly...
    assert_eq!(doc.render(), GOLDEN, "golden fixture drifted from the emitter's format");
    // ...and the round trip is a fixed point, not a converging sequence.
    let again = Json::parse(&doc.render()).unwrap();
    assert_eq!(again.render(), GOLDEN);
}

#[test]
fn committed_repo_snapshot_passes_the_current_schema() {
    // The repo-root BENCH_serve.json is the CI diff baseline; a schema
    // bump without a snapshot regeneration must fail here, not in CI.
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json"))
            .unwrap();
    let doc = Json::parse(&text).unwrap();
    bench_serve::validate_report(&doc).unwrap();
    assert_eq!(doc.render(), text, "committed snapshot must be emitter-formatted");
}

#[test]
fn diff_of_identical_snapshots_passes() {
    let base = temp_path("ident-base");
    let cand = temp_path("ident-cand");
    std::fs::write(&base, GOLDEN).unwrap();
    std::fs::write(&cand, GOLDEN).unwrap();
    let mut out = Vec::new();
    bench_serve::run_diff(&base, &cand, &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("all within 2x"), "{text}");
    // The per-config delta table prints on success too — drift shows up
    // in CI logs before it trips the 2x gate.
    assert!(text.contains("delta"), "{text}");
    assert!(text.contains("+0.0%"), "{text}");
    std::fs::remove_file(&base).unwrap();
    std::fs::remove_file(&cand).unwrap();
}

#[test]
fn diff_rejects_schema_drift() {
    let base = temp_path("schema-base");
    let cand = temp_path("schema-cand");
    std::fs::write(&base, GOLDEN).unwrap();
    let drifted = GOLDEN.replace("\"schema_version\": 3", "\"schema_version\": 2");
    assert_ne!(drifted, GOLDEN);
    std::fs::write(&cand, drifted).unwrap();
    let mut out = Vec::new();
    let err = bench_serve::run_diff(&base, &cand, &mut out).unwrap_err();
    assert!(err.to_string().contains("schema drift"), "{err}");
    std::fs::remove_file(&base).unwrap();
    std::fs::remove_file(&cand).unwrap();
}

#[test]
fn diff_rejects_throughput_swings_beyond_2x() {
    let base = temp_path("swing-base");
    let cand = temp_path("swing-cand");
    std::fs::write(&base, GOLDEN).unwrap();
    // Triple one config's throughput: a structural perf change, not noise.
    let mut doc = Json::parse(GOLDEN).unwrap();
    let Json::Obj(fields) = &mut doc else { panic!("snapshot is an object") };
    let configs = fields.iter_mut().find(|(k, _)| k == "configs").unwrap();
    let Json::Arr(items) = &mut configs.1 else { panic!("configs is an array") };
    let Json::Obj(cfg) = &mut items[0] else { panic!("config is an object") };
    let rps = cfg.iter_mut().find(|(k, _)| k == "throughput_rps").unwrap();
    let old = rps.1.as_f64().unwrap();
    rps.1 = Json::Num(old * 3.0);
    std::fs::write(&cand, doc.render()).unwrap();
    let mut out = Vec::new();
    let err = bench_serve::run_diff(&base, &cand, &mut out).unwrap_err();
    assert!(err.to_string().contains("regression"), "{err}");
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("SWING"), "{text}");
    assert!(text.contains("3.00"), "{text}");
    std::fs::remove_file(&base).unwrap();
    std::fs::remove_file(&cand).unwrap();
}

#[test]
fn diff_rejects_config_set_drift() {
    let base = temp_path("set-base");
    let cand = temp_path("set-cand");
    std::fs::write(&base, GOLDEN).unwrap();
    let mut doc = Json::parse(GOLDEN).unwrap();
    let Json::Obj(fields) = &mut doc else { panic!("snapshot is an object") };
    let configs = fields.iter_mut().find(|(k, _)| k == "configs").unwrap();
    let Json::Arr(items) = &mut configs.1 else { panic!("configs is an array") };
    items.pop().unwrap();
    assert!(!items.is_empty(), "fixture needs >= 2 configs for this test");
    std::fs::write(&cand, doc.render()).unwrap();
    let mut out = Vec::new();
    let err = bench_serve::run_diff(&base, &cand, &mut out).unwrap_err();
    assert!(err.to_string().contains("regression"), "{err}");
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("config dropped from candidate"), "{text}");
    std::fs::remove_file(&base).unwrap();
    std::fs::remove_file(&cand).unwrap();
}
