use crate::{Result, TensorError};

/// A dense row-major 2-D matrix of `f32`.
///
/// This is the workhorse of the SmartExchange decomposition: weight matrices
/// `W`, coefficient matrices `Ce`, and basis matrices `B` are all `Mat`s.
///
/// # Examples
///
/// ```
/// use se_tensor::Mat;
///
/// # fn main() -> Result<(), se_tensor::TensorError> {
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Mat::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// let i = se_tensor::Mat::identity(3);
    /// assert_eq!(i.get(1, 1), 1.0);
    /// assert_eq!(i.get(1, 2), 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if `data.len() != rows * cols`.
    pub fn from_vec(data: Vec<f32>, rows: usize, cols: usize) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidShape {
                reason: format!("{} elements cannot form a {rows}x{cols} matrix", data.len()),
            });
        }
        Ok(Mat { rows, cols, data })
    }

    /// Creates a matrix from explicit rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if rows have unequal lengths or
    /// there are zero rows.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self> {
        let Some(first) = rows.first() else {
            return Err(TensorError::InvalidShape { reason: "no rows provided".into() });
        };
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(TensorError::InvalidShape {
                    reason: format!("ragged rows: expected {cols} columns, found {}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Mat { rows: rows.len(), cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets the element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Immutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "row {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f32> {
        assert!(j < self.cols, "column {j} out of bounds");
        (0..self.rows).map(|i| self.data[i * self.cols + j]).collect()
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses an i-k-j loop order for cache friendliness; adequate for the
    /// matrix sizes in this workspace (inner dims are small or mid-sized).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Mat) -> Result<Mat> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        let mut out = Mat::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue; // exploits the sparse Ce rows SmartExchange produces
                }
                let b_row = &rhs.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise subtraction `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if dimensions differ.
    pub fn sub(&self, rhs: &Mat) -> Result<Mat> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "sub",
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| a - b).collect();
        Ok(Mat { rows: self.rows, cols: self.cols, data })
    }

    /// Element-wise addition `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if dimensions differ.
    pub fn add(&self, rhs: &Mat) -> Result<Mat> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "add",
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| a + b).collect();
        Ok(Mat { rows: self.rows, cols: self.cols, data })
    }

    /// Multiplies every element by a scalar, in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Frobenius norm.
    ///
    /// # Examples
    ///
    /// ```
    /// let m = se_tensor::Mat::from_rows(&[&[3.0], &[4.0]]).unwrap();
    /// assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    /// ```
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt() as f32
    }

    /// Fraction of exactly-zero elements, in `[0, 1]`.
    pub fn sparsity(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&x| x == 0.0).count();
        zeros as f32 / self.data.len() as f32
    }

    /// Number of rows whose elements are all exactly zero.
    ///
    /// SmartExchange's vector-wise sparsity zeroes whole rows of `Ce`; this
    /// is the quantity that drives the accelerator's row-skipping.
    pub fn zero_rows(&self) -> usize {
        (0..self.rows).filter(|&i| self.row(i).iter().all(|&x| x == 0.0)).count()
    }

    /// Extracts the sub-matrix of rows `r0..r1` (exclusive).
    ///
    /// # Panics
    ///
    /// Panics if `r0 > r1` or `r1 > rows`.
    pub fn row_slice(&self, r0: usize, r1: usize) -> Mat {
        assert!(r0 <= r1 && r1 <= self.rows, "row slice {r0}..{r1} out of bounds");
        Mat {
            rows: r1 - r0,
            cols: self.cols,
            data: self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        }
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if column counts differ.
    pub fn vstack(&self, other: &Mat) -> Result<Mat> {
        if self.cols != other.cols {
            return Err(TensorError::ShapeMismatch {
                op: "vstack",
                lhs: vec![self.rows, self.cols],
                rhs: vec![other.rows, other.cols],
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Mat { rows: self.rows + other.rows, cols: self.cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let i = Mat::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn zero_rows_counts_only_fully_zero() {
        let m = Mat::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        assert_eq!(m.zero_rows(), 2);
        assert!((m.sparsity() - 5.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn row_slice_and_vstack_roundtrip() {
        let m = Mat::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]).unwrap();
        let top = m.row_slice(0, 2);
        let bot = m.row_slice(2, 4);
        assert_eq!(top.vstack(&bot).unwrap(), m);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let r1: &[f32] = &[1.0, 2.0];
        let r2: &[f32] = &[3.0];
        assert!(Mat::from_rows(&[r1, r2]).is_err());
    }

    #[test]
    fn col_extraction() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        assert_eq!(m.col(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn scale_and_add() {
        let mut m = Mat::identity(2);
        m.scale(3.0);
        let s = m.add(&Mat::identity(2)).unwrap();
        assert_eq!(s.get(0, 0), 4.0);
        assert_eq!(s.get(0, 1), 0.0);
    }
}
