//! Convolution lowering primitives (im2col / col2im) and shape helpers.
//!
//! The CONV layers in Section II-A of the paper compute
//! `O[co][e][f] = σ(Σ_ci Σ_kr Σ_ks W[co][ci][kr][ks] · I[ci][eU+kr][fU+ks] + bias)`.
//! We lower that to a matrix product via im2col, which both the NN stack and
//! the accelerator-trace generation reuse.

use crate::{Mat, Result, Tensor, TensorError};

/// Geometry of a 2-D convolution.
///
/// Shapes follow the paper's notation: `C` input channels, `M` output
/// channels, `R × S` kernels, `U` stride, spatial padding `P` on all sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeom {
    /// Input channels (`C`).
    pub in_channels: usize,
    /// Output channels (`M`).
    pub out_channels: usize,
    /// Kernel height (`R`).
    pub kernel_h: usize,
    /// Kernel width (`S`).
    pub kernel_w: usize,
    /// Stride (`U`), same in both dimensions.
    pub stride: usize,
    /// Zero padding on every side.
    pub padding: usize,
}

impl Conv2dGeom {
    /// Output spatial size `(E, F)` for an input of `(H, W)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if the kernel (with padding)
    /// does not fit in the input or the stride is zero.
    pub fn output_size(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if self.stride == 0 {
            return Err(TensorError::InvalidShape { reason: "stride must be positive".into() });
        }
        let eff_h = h + 2 * self.padding;
        let eff_w = w + 2 * self.padding;
        if eff_h < self.kernel_h || eff_w < self.kernel_w {
            return Err(TensorError::InvalidShape {
                reason: format!(
                    "kernel {}x{} larger than padded input {eff_h}x{eff_w}",
                    self.kernel_h, self.kernel_w
                ),
            });
        }
        Ok(((eff_h - self.kernel_h) / self.stride + 1, (eff_w - self.kernel_w) / self.stride + 1))
    }
}

/// Lowers an input activation tensor `(C, H, W)` into the im2col matrix of
/// shape `(C·R·S, E·F)`, so that `conv(W, I) = W_mat · im2col(I)` with
/// `W_mat` of shape `(M, C·R·S)`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if `input` is not 3-D, its channel
/// count mismatches `geom`, or the geometry is invalid for the input size.
pub fn im2col(input: &Tensor, geom: &Conv2dGeom) -> Result<Mat> {
    let shape = input.shape();
    if shape.len() != 3 {
        return Err(TensorError::InvalidShape {
            reason: format!("im2col expects (C,H,W), found {shape:?}"),
        });
    }
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    if c != geom.in_channels {
        return Err(TensorError::InvalidShape {
            reason: format!("input has {c} channels, geometry expects {}", geom.in_channels),
        });
    }
    let (e, f) = geom.output_size(h, w)?;
    let (r, s, u, p) = (geom.kernel_h, geom.kernel_w, geom.stride, geom.padding);
    let mut out = Mat::zeros(c * r * s, e * f);
    let data = input.data();
    for ci in 0..c {
        let chan = &data[ci * h * w..(ci + 1) * h * w];
        for kr in 0..r {
            for ks in 0..s {
                let row_idx = (ci * r + kr) * s + ks;
                let row = out.row_mut(row_idx);
                for oy in 0..e {
                    let iy = (oy * u + kr) as isize - p as isize;
                    if iy < 0 || iy as usize >= h {
                        continue; // padding region stays zero
                    }
                    let iy = iy as usize;
                    for ox in 0..f {
                        let ix = (ox * u + ks) as isize - p as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        row[oy * f + ox] = chan[iy * w + ix as usize];
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Scatters an im2col-shaped gradient matrix `(C·R·S, E·F)` back into an
/// input-shaped tensor `(C, H, W)`, accumulating overlaps (the adjoint of
/// [`im2col`]).
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if the matrix shape does not match
/// the geometry for the given input size.
pub fn col2im(cols: &Mat, geom: &Conv2dGeom, h: usize, w: usize) -> Result<Tensor> {
    let c = geom.in_channels;
    let (r, s, u, p) = (geom.kernel_h, geom.kernel_w, geom.stride, geom.padding);
    let (e, f) = geom.output_size(h, w)?;
    if cols.rows() != c * r * s || cols.cols() != e * f {
        return Err(TensorError::InvalidShape {
            reason: format!(
                "col matrix {}x{} does not match geometry ({}x{})",
                cols.rows(),
                cols.cols(),
                c * r * s,
                e * f
            ),
        });
    }
    let mut out = Tensor::zeros(&[c, h, w]);
    let data = out.data_mut();
    for ci in 0..c {
        for kr in 0..r {
            for ks in 0..s {
                let row = cols.row((ci * r + kr) * s + ks);
                for oy in 0..e {
                    let iy = (oy * u + kr) as isize - p as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..f {
                        let ix = (ox * u + ks) as isize - p as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        data[(ci * h + iy) * w + ix as usize] += row[oy * f + ox];
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Full 2-D convolution forward pass: weights `(M, C, R, S)` applied to an
/// input `(C, H, W)`, producing `(M, E, F)`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] on any dimension mismatch.
///
/// # Examples
///
/// ```
/// use se_tensor::{Tensor, conv::{conv2d, Conv2dGeom}};
/// # fn main() -> Result<(), se_tensor::TensorError> {
/// // 1x1x3x3 identity-ish kernel on a 1x3x3 input.
/// let mut w = Tensor::zeros(&[1, 1, 3, 3]);
/// w.set(&[0, 0, 1, 1], 1.0); // centre tap
/// let input = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 3, 3])?;
/// let geom = Conv2dGeom {
///     in_channels: 1, out_channels: 1, kernel_h: 3, kernel_w: 3, stride: 1, padding: 1,
/// };
/// let out = conv2d(&w, &input, &geom)?;
/// assert_eq!(out.shape(), &[1, 3, 3]);
/// assert_eq!(out.at(&[0, 1, 1]), 5.0); // centre tap passes the input through
/// # Ok(())
/// # }
/// ```
pub fn conv2d(weights: &Tensor, input: &Tensor, geom: &Conv2dGeom) -> Result<Tensor> {
    let ws = weights.shape();
    if ws.len() != 4
        || ws[0] != geom.out_channels
        || ws[1] != geom.in_channels
        || ws[2] != geom.kernel_h
        || ws[3] != geom.kernel_w
    {
        return Err(TensorError::InvalidShape {
            reason: format!("weights {ws:?} do not match geometry {geom:?}"),
        });
    }
    let (h, w) = (input.shape()[1], input.shape()[2]);
    let (e, f) = geom.output_size(h, w)?;
    let cols = im2col(input, geom)?;
    let w_mat = Mat::from_vec(
        weights.data().to_vec(),
        geom.out_channels,
        geom.in_channels * geom.kernel_h * geom.kernel_w,
    )?;
    let out = w_mat.matmul(&cols)?;
    Tensor::from_vec(out.into_vec(), &[geom.out_channels, e, f])
}

/// Depth-wise 2-D convolution: weights `(C, R, S)` (one kernel per channel)
/// applied to `(C, H, W)`, producing `(C, E, F)`.
///
/// Depth-wise CONV layers are the structure MobileNetV2/EfficientNet use and
/// that the accelerator's "dedicated design for compact models" targets.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] on dimension mismatch.
pub fn depthwise_conv2d(weights: &Tensor, input: &Tensor, geom: &Conv2dGeom) -> Result<Tensor> {
    let ws = weights.shape();
    if ws.len() != 3
        || ws[0] != geom.in_channels
        || ws[1] != geom.kernel_h
        || ws[2] != geom.kernel_w
    {
        return Err(TensorError::InvalidShape {
            reason: format!("depthwise weights {ws:?} do not match geometry {geom:?}"),
        });
    }
    let shape = input.shape();
    if shape.len() != 3 || shape[0] != geom.in_channels {
        return Err(TensorError::InvalidShape {
            reason: format!("depthwise input {shape:?} does not match geometry {geom:?}"),
        });
    }
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let (e, f) = geom.output_size(h, w)?;
    let (r, s, u, p) = (geom.kernel_h, geom.kernel_w, geom.stride, geom.padding);
    let mut out = Tensor::zeros(&[c, e, f]);
    let in_data = input.data();
    let w_data = weights.data();
    let out_data = out.data_mut();
    for ci in 0..c {
        let chan = &in_data[ci * h * w..(ci + 1) * h * w];
        let kern = &w_data[ci * r * s..(ci + 1) * r * s];
        let out_chan = &mut out_data[ci * e * f..(ci + 1) * e * f];
        for oy in 0..e {
            for ox in 0..f {
                let mut acc = 0.0f32;
                for kr in 0..r {
                    let iy = (oy * u + kr) as isize - p as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    for ks in 0..s {
                        let ix = (ox * u + ks) as isize - p as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        acc += kern[kr * s + ks] * chan[iy as usize * w + ix as usize];
                    }
                }
                out_chan[oy * f + ox] = acc;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(c: usize, m: usize, k: usize, stride: usize, pad: usize) -> Conv2dGeom {
        Conv2dGeom {
            in_channels: c,
            out_channels: m,
            kernel_h: k,
            kernel_w: k,
            stride,
            padding: pad,
        }
    }

    #[test]
    fn output_size_basic() {
        let g = geom(1, 1, 3, 1, 0);
        assert_eq!(g.output_size(5, 5).unwrap(), (3, 3));
        let g = geom(1, 1, 3, 1, 1);
        assert_eq!(g.output_size(5, 5).unwrap(), (5, 5));
        let g = geom(1, 1, 3, 2, 1);
        assert_eq!(g.output_size(8, 8).unwrap(), (4, 4));
    }

    #[test]
    fn output_size_rejects_bad_geometry() {
        let g = geom(1, 1, 7, 1, 0);
        assert!(g.output_size(5, 5).is_err());
        let mut g = geom(1, 1, 3, 1, 0);
        g.stride = 0;
        assert!(g.output_size(5, 5).is_err());
    }

    #[test]
    fn im2col_identity_kernel_layout() {
        // 1 channel, 2x2 input, 1x1 kernel: im2col is just the flattened input.
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
        let g = geom(1, 1, 1, 1, 0);
        let cols = im2col(&input, &g).unwrap();
        assert_eq!(cols.rows(), 1);
        assert_eq!(cols.row(0), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn conv2d_matches_manual() {
        // 1x1x2x2 averaging kernel over 1x3x3 input, stride 1, no pad.
        let w = Tensor::from_vec(vec![0.25; 4], &[1, 1, 2, 2]).unwrap();
        let input = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 3, 3]).unwrap();
        let g = geom(1, 1, 2, 1, 0);
        let out = conv2d(&w, &input, &g).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2]);
        // Top-left window: (1+2+4+5)/4 = 3.
        assert!((out.at(&[0, 0, 0]) - 3.0).abs() < 1e-6);
        assert!((out.at(&[0, 1, 1]) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn conv2d_multi_channel_sums_channels() {
        // Two input channels, kernel = all ones: output = sum over both.
        let w = Tensor::full(&[1, 2, 1, 1], 1.0);
        let input = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0], &[2, 1, 2]).unwrap();
        let g = Conv2dGeom {
            in_channels: 2,
            out_channels: 1,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            padding: 0,
        };
        let out = conv2d(&w, &input, &g).unwrap();
        assert_eq!(out.data(), &[11.0, 22.0]);
    }

    #[test]
    fn conv2d_padding_zero_extends() {
        let w = Tensor::full(&[1, 1, 3, 3], 1.0);
        let input = Tensor::full(&[1, 1, 1], 5.0);
        let g = geom(1, 1, 3, 1, 1);
        let out = conv2d(&w, &input, &g).unwrap();
        // Only the centre tap sees the single input pixel.
        assert_eq!(out.shape(), &[1, 1, 1]);
        assert_eq!(out.at(&[0, 0, 0]), 5.0);
    }

    #[test]
    fn conv2d_rejects_wrong_weight_shape() {
        let w = Tensor::zeros(&[1, 1, 3, 3]);
        let input = Tensor::zeros(&[2, 5, 5]);
        let g = geom(2, 1, 3, 1, 0);
        assert!(conv2d(&w, &input, &g).is_err());
    }

    #[test]
    fn depthwise_independent_channels() {
        // Channel 0 kernel doubles, channel 1 kernel negates.
        let w = Tensor::from_vec(vec![2.0, -1.0], &[2, 1, 1]).unwrap();
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 1, 2]).unwrap();
        let g = Conv2dGeom {
            in_channels: 2,
            out_channels: 2,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            padding: 0,
        };
        let out = depthwise_conv2d(&w, &input, &g).unwrap();
        assert_eq!(out.data(), &[2.0, 4.0, -3.0, -4.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for arbitrary x, y.
        let g = geom(2, 1, 3, 1, 1);
        let x = Tensor::from_vec((0..2 * 4 * 4).map(|i| (i as f32).sin()).collect(), &[2, 4, 4])
            .unwrap();
        let cols = im2col(&x, &g).unwrap();
        let y = Mat::from_fn(cols.rows(), cols.cols(), |i, j| ((i * 31 + j * 17) % 7) as f32 - 3.0);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let back = col2im(&y, &g, 4, 4).unwrap();
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn strided_conv_spatial_positions() {
        let mut w = Tensor::zeros(&[1, 1, 1, 1]);
        w.set(&[0, 0, 0, 0], 1.0);
        let input = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 4, 4]).unwrap();
        let g = geom(1, 1, 1, 2, 0);
        let out = conv2d(&w, &input, &g).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.data(), &[0.0, 2.0, 8.0, 10.0]);
    }
}
