use std::fmt;

/// Errors produced by tensor and linear-algebra operations.
///
/// All fallible public functions in this crate return this type; it
/// implements [`std::error::Error`] so it composes with `?` and
/// error-handling libraries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: Vec<usize>,
        /// Shape of the right/second operand.
        rhs: Vec<usize>,
    },
    /// A shape was invalid on its own (zero-sized dimension where data was
    /// provided, or element count not matching the buffer length).
    InvalidShape {
        /// Human-readable description of what was wrong.
        reason: String,
    },
    /// A matrix required to be (numerically) positive definite or otherwise
    /// invertible was singular.
    Singular,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the routine that failed to converge.
        routine: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::InvalidShape { reason } => write!(f, "invalid shape: {reason}"),
            TensorError::Singular => write!(f, "matrix is singular"),
            TensorError::NoConvergence { routine, iterations } => {
                write!(f, "{routine} did not converge after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch { op: "matmul", lhs: vec![2, 3], rhs: vec![4, 5] };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("[2, 3]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
