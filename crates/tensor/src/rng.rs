//! Deterministic random initialisation helpers.
//!
//! Every experiment in this workspace is seeded, so results are
//! bit-reproducible. Normal sampling uses Box–Muller on top of `rand`'s
//! uniform source (avoiding an extra `rand_distr` dependency).

use crate::{Mat, Tensor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// let mut a = se_tensor::rng::seeded(42);
/// let mut b = se_tensor::rng::seeded(42);
/// assert_eq!(se_tensor::rng::normal(&mut a), se_tensor::rng::normal(&mut b));
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws one standard-normal sample via Box–Muller.
pub fn normal(rng: &mut StdRng) -> f32 {
    // Avoid ln(0) by nudging the lower bound.
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Fills a vector with `N(mean, std²)` samples.
pub fn normal_vec(rng: &mut StdRng, len: usize, mean: f32, std: f32) -> Vec<f32> {
    (0..len).map(|_| mean + std * normal(rng)).collect()
}

/// Fills a vector with `U[lo, hi)` samples.
pub fn uniform_vec(rng: &mut StdRng, len: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..len).map(|_| rng.random_range(lo..hi)).collect()
}

/// A tensor of `N(0, std²)` samples with the given shape.
pub fn normal_tensor(rng: &mut StdRng, shape: &[usize], std: f32) -> Tensor {
    let n = shape.iter().product();
    Tensor::from_vec(normal_vec(rng, n, 0.0, std), shape).expect("length computed from shape")
}

/// A matrix of `N(0, std²)` samples.
pub fn normal_mat(rng: &mut StdRng, rows: usize, cols: usize, std: f32) -> Mat {
    Mat::from_vec(normal_vec(rng, rows * cols, 0.0, std), rows, cols)
        .expect("length computed from shape")
}

/// Kaiming/He-style fan-in initialisation for a weight tensor: standard
/// deviation `sqrt(2 / fan_in)`, the conventional choice for ReLU networks
/// and what gives the synthetic model-zoo weights realistic magnitudes.
pub fn kaiming_tensor(rng: &mut StdRng, shape: &[usize], fan_in: usize) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    normal_tensor(rng, shape, std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        assert_eq!(normal_vec(&mut a, 16, 0.0, 1.0), normal_vec(&mut b, 16, 0.0, 1.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        assert_ne!(normal_vec(&mut a, 16, 0.0, 1.0), normal_vec(&mut b, 16, 0.0, 1.0));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = seeded(1234);
        let v = normal_vec(&mut rng, 20_000, 0.0, 1.0);
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        let var: f32 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = seeded(5);
        let v = uniform_vec(&mut rng, 1000, -0.5, 0.5);
        assert!(v.iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = seeded(9);
        let t = kaiming_tensor(&mut rng, &[64, 64], 512);
        let std = (t.data().iter().map(|&x| x * x).sum::<f32>() / t.len() as f32).sqrt();
        let expect = (2.0f32 / 512.0).sqrt();
        assert!((std - expect).abs() / expect < 0.1, "std {std} vs {expect}");
    }

    #[test]
    fn shaped_constructors() {
        let mut rng = seeded(3);
        let t = normal_tensor(&mut rng, &[2, 3, 4], 0.1);
        assert_eq!(t.shape(), &[2, 3, 4]);
        let m = normal_mat(&mut rng, 3, 5, 1.0);
        assert_eq!((m.rows(), m.cols()), (3, 5));
    }
}
