//! Linear-algebra kernels: Cholesky factorisation, least squares, and a
//! one-sided Jacobi SVD.
//!
//! The SmartExchange fitting steps (Section III-B, Step 2 of Algorithm 1)
//! are two unconstrained least-squares problems:
//!
//! * `B  = argmin_B  ||W - Ce B||_F`  → solved by [`lstsq_left`], and
//! * `Ce = argmin_Ce ||W - Ce B||_F`  → solved by [`lstsq_right`].
//!
//! Both reduce to small symmetric positive (semi-)definite systems
//! (`r × r` with `r = S`, typically 3), solved via Cholesky with optional
//! ridge regularisation for rank-deficient cases.
//!
//! [`svd`] provides the low-rank-decomposition *baseline* the paper compares
//! against (decomposition-alone compression).

use crate::{Mat, Result, TensorError};

/// Cholesky factorisation of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular `L` with `A = L Lᵀ`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a` is not square and
/// [`TensorError::Singular`] if a non-positive pivot is encountered
/// (matrix not positive definite within `f64` round-off).
///
/// # Examples
///
/// ```
/// use se_tensor::{Mat, linalg};
/// # fn main() -> Result<(), se_tensor::TensorError> {
/// let a = Mat::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let l = linalg::cholesky(&a)?;
/// let recon = l.matmul(&l.transpose())?;
/// assert!((recon.get(0, 0) - 4.0).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
pub fn cholesky(a: &Mat) -> Result<Mat> {
    let n = a.rows();
    if a.cols() != n {
        return Err(TensorError::ShapeMismatch {
            op: "cholesky",
            lhs: vec![a.rows(), a.cols()],
            rhs: vec![n, n],
        });
    }
    // Factor in f64 for numerical robustness; the inputs are f32 data.
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j) as f64;
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(TensorError::Singular);
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Ok(Mat::from_fn(n, n, |i, j| l[i * n + j] as f32))
}

/// Solves `A X = B` for symmetric positive-definite `A` via Cholesky.
///
/// # Errors
///
/// Propagates [`cholesky`] errors; also returns
/// [`TensorError::ShapeMismatch`] if `b.rows() != a.rows()`.
pub fn solve_spd(a: &Mat, b: &Mat) -> Result<Mat> {
    if b.rows() != a.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "solve_spd",
            lhs: vec![a.rows(), a.cols()],
            rhs: vec![b.rows(), b.cols()],
        });
    }
    let l = cholesky(a)?;
    let n = a.rows();
    let m = b.cols();
    // Forward substitution: L Y = B.
    let mut y = vec![0.0f64; n * m];
    for c in 0..m {
        for i in 0..n {
            let mut sum = b.get(i, c) as f64;
            for k in 0..i {
                sum -= (l.get(i, k) as f64) * y[k * m + c];
            }
            y[i * m + c] = sum / l.get(i, i) as f64;
        }
    }
    // Back substitution: Lᵀ X = Y.
    let mut x = vec![0.0f64; n * m];
    for c in 0..m {
        for i in (0..n).rev() {
            let mut sum = y[i * m + c];
            for k in (i + 1)..n {
                sum -= (l.get(k, i) as f64) * x[k * m + c];
            }
            x[i * m + c] = sum / l.get(i, i) as f64;
        }
    }
    Ok(Mat::from_fn(n, m, |i, j| x[i * m + j] as f32))
}

/// Adds `ridge · (1 + mean(diag))` to the diagonal of a Gram matrix so the
/// regularisation stays meaningful across scales (an absolute `1e-8` would
/// vanish in `f32` next to a diagonal of order 1).
fn add_relative_ridge(gram: &mut Mat, ridge: f32) {
    if ridge <= 0.0 {
        return;
    }
    let n = gram.rows();
    let mean_diag = (0..n).map(|i| gram.get(i, i)).sum::<f32>() / n.max(1) as f32;
    let eff = ridge * (1.0 + mean_diag);
    for i in 0..n {
        let v = gram.get(i, i) + eff;
        gram.set(i, i, v);
    }
}

/// Least squares for the *left* factor position:
/// `B = argmin_B ||W - C B||_F`, solved as `(CᵀC + ridge·I) B = CᵀW`.
///
/// `ridge >= 0` adds Tikhonov regularisation; pass a small positive value
/// (e.g. `1e-6`) when `C` may have zero columns (fully-pruned coefficient
/// columns produce an exactly singular normal matrix).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `c.rows() != w.rows()`, or
/// [`TensorError::Singular`] if the (regularised) normal matrix is still
/// singular.
pub fn lstsq_left(c: &Mat, w: &Mat, ridge: f32) -> Result<Mat> {
    if c.rows() != w.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "lstsq_left",
            lhs: vec![c.rows(), c.cols()],
            rhs: vec![w.rows(), w.cols()],
        });
    }
    let ct = c.transpose();
    let mut gram = ct.matmul(c)?;
    add_relative_ridge(&mut gram, ridge);
    let rhs = ct.matmul(w)?;
    solve_spd(&gram, &rhs)
}

/// Least squares for the *right* factor position:
/// `C = argmin_C ||W - C B||_F`, solved as `C = W Bᵀ (B Bᵀ + ridge·I)⁻¹`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `w.cols() != b.cols()`, or
/// [`TensorError::Singular`] if the (regularised) Gram matrix is singular.
pub fn lstsq_right(w: &Mat, b: &Mat, ridge: f32) -> Result<Mat> {
    if w.cols() != b.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "lstsq_right",
            lhs: vec![w.rows(), w.cols()],
            rhs: vec![b.rows(), b.cols()],
        });
    }
    let bt = b.transpose();
    let mut gram = b.matmul(&bt)?; // r × r
    add_relative_ridge(&mut gram, ridge);
    // Solve (B Bᵀ) Xᵀ = B Wᵀ, then C = Xᵀᵀ = X.
    let rhs = b.matmul(&w.transpose())?;
    let xt = solve_spd(&gram, &rhs)?;
    Ok(xt.transpose())
}

/// Result of a singular value decomposition `A = U Σ Vᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Svd {
    /// Left singular vectors, `m × k` with orthonormal columns.
    pub u: Mat,
    /// Singular values in non-increasing order, length `k = min(m, n)`.
    pub sigma: Vec<f32>,
    /// Right singular vectors, `n × k` with orthonormal columns.
    pub v: Mat,
}

impl Svd {
    /// Reconstructs the best rank-`r` approximation `U_r Σ_r V_rᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if `r` exceeds the number of
    /// singular values.
    pub fn truncate(&self, r: usize) -> Result<Mat> {
        if r > self.sigma.len() {
            return Err(TensorError::InvalidShape {
                reason: format!("rank {r} exceeds {} singular values", self.sigma.len()),
            });
        }
        let m = self.u.rows();
        let n = self.v.rows();
        let mut out = Mat::zeros(m, n);
        for k in 0..r {
            let s = self.sigma[k];
            for i in 0..m {
                let uis = self.u.get(i, k) * s;
                if uis == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let v = out.get(i, j) + uis * self.v.get(j, k);
                    out.set(i, j, v);
                }
            }
        }
        Ok(out)
    }
}

/// One-sided Jacobi SVD of `a` (`m × n`, any aspect ratio).
///
/// Orthogonalises the columns of `A` by Jacobi rotations; suitable for the
/// moderate matrix sizes used in the low-rank compression baseline.
///
/// # Errors
///
/// Returns [`TensorError::NoConvergence`] if off-diagonal mass remains after
/// the sweep budget (does not happen for well-scaled inputs).
///
/// # Examples
///
/// ```
/// use se_tensor::{Mat, linalg};
/// # fn main() -> Result<(), se_tensor::TensorError> {
/// let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]])?;
/// let svd = linalg::svd(&a)?;
/// assert!((svd.sigma[0] - 3.0).abs() < 1e-4);
/// assert!((svd.sigma[1] - 2.0).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
pub fn svd(a: &Mat) -> Result<Svd> {
    // Work on the tall orientation; transpose back at the end if needed.
    if a.rows() < a.cols() {
        let s = svd(&a.transpose())?;
        return Ok(Svd { u: s.v, sigma: s.sigma, v: s.u });
    }
    let m = a.rows();
    let n = a.cols();
    // u starts as a copy of A in f64; v accumulates rotations.
    let mut u: Vec<f64> = a.data().iter().map(|&x| x as f64).collect();
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let max_sweeps = 60;
    let eps = 1e-12_f64;
    let mut converged = false;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Column inner products.
                let (mut app, mut aqq, mut apq) = (0.0f64, 0.0f64, 0.0f64);
                for i in 0..m {
                    let up = u[i * n + p];
                    let uq = u[i * n + q];
                    app += up * up;
                    aqq += uq * uq;
                    apq += up * uq;
                }
                off += apq * apq;
                if apq.abs() <= eps * (app * aqq).sqrt().max(1e-300) {
                    continue;
                }
                // Jacobi rotation zeroing the (p,q) entry of AᵀA.
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let up = u[i * n + p];
                    let uq = u[i * n + q];
                    u[i * n + p] = c * up - s * uq;
                    u[i * n + q] = s * up + c * uq;
                }
                for i in 0..n {
                    let vp = v[i * n + p];
                    let vq = v[i * n + q];
                    v[i * n + p] = c * vp - s * vq;
                    v[i * n + q] = s * vp + c * vq;
                }
            }
        }
        if off.sqrt() <= 1e-10 {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(TensorError::NoConvergence { routine: "svd", iterations: max_sweeps });
    }
    // Column norms are the singular values; normalise U's columns.
    let mut order: Vec<usize> = (0..n).collect();
    let mut sigmas = vec![0.0f64; n];
    for (j, s) in sigmas.iter_mut().enumerate() {
        *s = (0..m).map(|i| u[i * n + j] * u[i * n + j]).sum::<f64>().sqrt();
    }
    order.sort_by(|&x, &y| sigmas[y].partial_cmp(&sigmas[x]).expect("finite singular values"));

    let mut u_out = Mat::zeros(m, n);
    let mut v_out = Mat::zeros(n, n);
    let mut sigma = Vec::with_capacity(n);
    for (k, &j) in order.iter().enumerate() {
        let s = sigmas[j];
        sigma.push(s as f32);
        let inv = if s > 1e-30 { 1.0 / s } else { 0.0 };
        for i in 0..m {
            u_out.set(i, k, (u[i * n + j] * inv) as f32);
        }
        for i in 0..n {
            v_out.set(i, k, v[i * n + j] as f32);
        }
    }
    Ok(Svd { u: u_out, sigma, v: v_out })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn cholesky_known() {
        let a =
            Mat::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]).unwrap();
        let l = cholesky(&a).unwrap();
        assert_close(l.get(0, 0), 5.0, 1e-5);
        assert_close(l.get(1, 0), 3.0, 1e-5);
        assert_close(l.get(1, 1), 3.0, 1e-5);
        assert_close(l.get(2, 0), -1.0, 1e-5);
        assert_close(l.get(2, 2), 3.0, 1e-4);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert_eq!(cholesky(&a), Err(TensorError::Singular));
    }

    #[test]
    fn cholesky_rejects_nonsquare() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(cholesky(&a), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn solve_spd_identity_rhs() {
        let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = solve_spd(&a, &Mat::identity(2)).unwrap();
        // x should be A^{-1}: check A * x = I.
        let prod = a.matmul(&x).unwrap();
        assert_close(prod.get(0, 0), 1.0, 1e-5);
        assert_close(prod.get(0, 1), 0.0, 1e-5);
        assert_close(prod.get(1, 1), 1.0, 1e-5);
    }

    #[test]
    fn lstsq_left_exact_system() {
        // C is square invertible: B must satisfy W = C B exactly.
        let c = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
        let w = Mat::from_rows(&[&[2.0, 4.0], &[8.0, 12.0]]).unwrap();
        let b = lstsq_left(&c, &w, 0.0).unwrap();
        assert_close(b.get(0, 0), 1.0, 1e-5);
        assert_close(b.get(0, 1), 2.0, 1e-5);
        assert_close(b.get(1, 0), 2.0, 1e-5);
        assert_close(b.get(1, 1), 3.0, 1e-5);
    }

    #[test]
    fn lstsq_right_exact_system() {
        let b = Mat::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        let c_true = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let w = c_true.matmul(&b).unwrap();
        let c = lstsq_right(&w, &b, 0.0).unwrap();
        for i in 0..3 {
            for j in 0..2 {
                assert_close(c.get(i, j), c_true.get(i, j), 1e-4);
            }
        }
    }

    #[test]
    fn lstsq_left_overdetermined_reduces_residual() {
        // Random-ish overdetermined system: residual of LS solution must be
        // no worse than residual of any other candidate (here: zero).
        let c = Mat::from_rows(&[&[1.0, 0.5], &[0.2, 1.0], &[1.0, 1.0], &[0.3, 0.7]]).unwrap();
        let w = Mat::from_rows(&[&[1.0], &[2.0], &[3.0], &[0.5]]).unwrap();
        let b = lstsq_left(&c, &w, 0.0).unwrap();
        let resid = w.sub(&c.matmul(&b).unwrap()).unwrap().frobenius_norm();
        assert!(resid < w.frobenius_norm());
    }

    #[test]
    fn ridge_rescues_singular_gram() {
        // C has an all-zero column -> CᵀC singular without ridge.
        let c = Mat::from_rows(&[&[1.0, 0.0], &[2.0, 0.0]]).unwrap();
        let w = Mat::from_rows(&[&[1.0], &[2.0]]).unwrap();
        assert_eq!(lstsq_left(&c, &w, 0.0), Err(TensorError::Singular));
        let b = lstsq_left(&c, &w, 1e-6).unwrap();
        assert_close(b.get(0, 0), 1.0, 1e-3);
    }

    #[test]
    fn svd_diagonal() {
        let a = Mat::from_rows(&[&[0.0, 2.0], &[3.0, 0.0], &[0.0, 0.0]]).unwrap();
        let s = svd(&a).unwrap();
        assert_close(s.sigma[0], 3.0, 1e-4);
        assert_close(s.sigma[1], 2.0, 1e-4);
    }

    #[test]
    fn svd_reconstructs() {
        let a = Mat::from_rows(&[
            &[1.0, 2.0, 3.0],
            &[4.0, 5.0, 6.0],
            &[7.0, 8.0, 10.0],
            &[1.0, 0.0, -1.0],
        ])
        .unwrap();
        let s = svd(&a).unwrap();
        let full = s.truncate(3).unwrap();
        let err = a.sub(&full).unwrap().frobenius_norm();
        assert!(err < 1e-3, "reconstruction error {err}");
    }

    #[test]
    fn svd_truncation_is_best_low_rank() {
        let a = Mat::from_rows(&[&[10.0, 0.0], &[0.0, 1.0]]).unwrap();
        let s = svd(&a).unwrap();
        let r1 = s.truncate(1).unwrap();
        // Best rank-1 approximation keeps the sigma=10 direction.
        assert_close(r1.get(0, 0), 10.0, 1e-4);
        assert_close(r1.get(1, 1), 0.0, 1e-4);
        assert!(s.truncate(5).is_err());
    }

    #[test]
    fn svd_wide_matrix() {
        let a = Mat::from_rows(&[&[1.0, 0.0, 0.0, 2.0], &[0.0, 3.0, 0.0, 0.0]]).unwrap();
        let s = svd(&a).unwrap();
        assert_eq!(s.u.rows(), 2);
        assert_eq!(s.v.rows(), 4);
        let recon = s.truncate(2).unwrap();
        assert_close(recon.get(0, 3), 2.0, 1e-4);
        assert_close(recon.get(1, 1), 3.0, 1e-4);
    }

    #[test]
    fn svd_singular_values_nonincreasing() {
        let a = Mat::from_fn(6, 4, |i, j| ((i * 7 + j * 3) % 5) as f32 - 2.0);
        let s = svd(&a).unwrap();
        for w in s.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-6);
        }
    }
}
