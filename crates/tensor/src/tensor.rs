use crate::{Mat, Result, TensorError};

/// A dense, contiguous, row-major n-dimensional array of `f32`.
///
/// `Tensor` is deliberately simple: it owns its data, is always contiguous,
/// and exposes just the operations the SmartExchange pipeline needs
/// (element-wise maps, reductions, reshapes, and 4-D indexing for
/// convolution weights/activations).
///
/// # Examples
///
/// ```
/// use se_tensor::Tensor;
///
/// # fn main() -> Result<(), se_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// let t = se_tensor::Tensor::zeros(&[3, 4]);
    /// assert_eq!(t.len(), 12);
    /// assert!(t.data().iter().all(|&x| x == 0.0));
    /// ```
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![0.0; n] }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![value; n] }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if the buffer length does not
    /// equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let n: usize = shape.iter().product();
        if n != data.len() {
            return Err(TensorError::InvalidShape {
                reason: format!("buffer of {} elements cannot have shape {shape:?}", data.len()),
            });
        }
        Ok(Tensor { shape: shape.to_vec(), data })
    }

    /// The shape (dimension sizes) of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Computes the linear offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != self.ndim()` or any index is out of bounds
    /// (this is an internal indexing contract, like slice indexing).
    fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (d, (&i, &s)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(i < s, "index {i} out of bounds for dim {d} of size {s}");
            off = off * s + i;
        }
        off
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or any coordinate is out of
    /// bounds, mirroring slice indexing.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or any coordinate is out of
    /// bounds.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.offset(idx);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Applies a function to every element, returning a new tensor.
    ///
    /// # Examples
    ///
    /// ```
    /// let t = se_tensor::Tensor::full(&[2], -1.0);
    /// let r = t.map(|x| x.max(0.0)); // ReLU
    /// assert_eq!(r.data(), &[0.0, 0.0]);
    /// ```
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, "sub", |a, b| a - b)
    }

    /// Element-wise multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, "mul", |a, b| a * b)
    }

    fn zip(&self, other: &Tensor, op: &'static str, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        })
    }

    /// Multiplies every element by a scalar, in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum element, or `None` for an empty tensor.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::max)
    }

    /// Minimum element, or `None` for an empty tensor.
    pub fn min(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::min)
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius / L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt() as f32
    }

    /// Fraction of elements equal to exactly zero, in `[0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// let t = se_tensor::Tensor::from_vec(vec![0.0, 1.0, 0.0, 2.0], &[4]).unwrap();
    /// assert_eq!(t.sparsity(), 0.5);
    /// ```
    pub fn sparsity(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&x| x == 0.0).count();
        zeros as f32 / self.data.len() as f32
    }

    /// Interprets a 2-D tensor as a [`Mat`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if the tensor is not 2-D.
    pub fn to_mat(&self) -> Result<Mat> {
        if self.shape.len() != 2 {
            return Err(TensorError::InvalidShape {
                reason: format!("expected 2-D tensor, found shape {:?}", self.shape),
            });
        }
        Mat::from_vec(self.data.clone(), self.shape[0], self.shape[1])
    }
}

impl From<Mat> for Tensor {
    fn from(m: Mat) -> Tensor {
        let (rows, cols) = (m.rows(), m.cols());
        Tensor { shape: vec![rows, cols], data: m.into_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(z.len(), 24);
        assert_eq!(z.ndim(), 3);
        let f = Tensor::full(&[2], 7.5);
        assert_eq!(f.data(), &[7.5, 7.5]);
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn indexing_row_major() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]).unwrap();
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[0, 0, 3]), 3.0);
        assert_eq!(t.at(&[0, 1, 0]), 4.0);
        assert_eq!(t.at(&[1, 0, 0]), 12.0);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
    }

    #[test]
    fn set_roundtrip() {
        let mut t = Tensor::zeros(&[3, 3]);
        t.set(&[1, 2], 9.0);
        assert_eq!(t.at(&[1, 2]), 9.0);
        assert_eq!(t.sum(), 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn at_out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.at(&[2, 0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(a.sub(&b).unwrap().data(), &[-2.0, -3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![3.0, -4.0, 0.0], &[3]).unwrap();
        assert_eq!(t.sum(), -1.0);
        assert_eq!(t.max(), Some(3.0));
        assert_eq!(t.min(), Some(-4.0));
        assert!((t.norm() - 5.0).abs() < 1e-6);
        assert!((t.sparsity() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let r = t.reshape(&[2, 2]).unwrap();
        assert_eq!(r.at(&[1, 1]), 4.0);
        assert!(t.reshape(&[3, 2]).is_err());
    }

    #[test]
    fn mat_conversion_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let m = t.to_mat().unwrap();
        assert_eq!(m.get(1, 2), 6.0);
        let back: Tensor = m.into();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_tensor_behaviour() {
        let t = Tensor::zeros(&[0]);
        assert!(t.is_empty());
        assert_eq!(t.max(), None);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.sparsity(), 0.0);
    }
}
