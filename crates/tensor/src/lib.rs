//! Dense `f32` tensor and linear-algebra substrate for the SmartExchange
//! reproduction.
//!
//! The SmartExchange paper (ISCA 2020) evaluates on PyTorch-trained networks;
//! this crate provides the from-scratch numerical substrate the rest of the
//! workspace builds on: an n-dimensional [`Tensor`], a 2-D [`Mat`] with the
//! linear-algebra kernels the decomposition algorithm needs (mat-mul,
//! Cholesky, least squares, Jacobi SVD), convolution lowering (im2col), and
//! deterministic random initialisation.
//!
//! # Examples
//!
//! ```
//! use se_tensor::{Mat, linalg};
//!
//! # fn main() -> Result<(), se_tensor::TensorError> {
//! // Solve the least-squares problem  argmin_B ||W - C B||_F.
//! let c = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]])?;
//! let w = Mat::from_rows(&[&[2.0], &[3.0], &[5.0]])?;
//! let b = linalg::lstsq_left(&c, &w, 0.0)?;
//! assert!((b.get(0, 0) - 2.0).abs() < 1e-5);
//! assert!((b.get(1, 0) - 3.0).abs() < 1e-5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod mat;
mod tensor;

pub mod conv;
pub mod linalg;
pub mod rng;

pub use error::TensorError;
pub use mat::Mat;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
