//! Shared cycle-model machinery: per-activation serial-cycle counts,
//! strided window max/sum, and row-occupancy masks.
//!
//! The bit-serial MAC lanes of a PE line run in lockstep: one weight
//! element is broadcast to `dimF` lanes, each multiplying it by its own
//! activation over that activation's non-zero Booth digits. The step
//! therefore costs the **maximum** serial count across the window of
//! activations, while the **sum** of serial counts is the actual switching
//! work (PE energy). Both are computed here, with stride-aware windows and
//! zero padding treated as cost-free.

use se_ir::{booth, QuantTensor};

/// How many serial cycles one multiplication by a given 8-bit activation
/// code costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SerialMode {
    /// Booth-encoded bit-serial lanes (the SmartExchange PE): non-zero
    /// radix-4 Booth digits; zero activations cost nothing.
    Booth,
    /// Plain essential-bit serial lanes (Bit-pragmatic): non-zero bits.
    PlainBits,
    /// Conventional parallel multipliers: one cycle per multiplication,
    /// including multiplications by zero.
    Unit,
}

impl SerialMode {
    /// Serial cycles for one activation code.
    #[inline]
    pub fn cycles(&self, code: i8) -> u8 {
        match self {
            SerialMode::Booth => booth::booth_nonzero_digits(code) as u8,
            SerialMode::PlainBits => booth::nonzero_bits(code) as u8,
            SerialMode::Unit => 1,
        }
    }
}

/// Per-element serial-cycle counts for an entire activation tensor.
pub fn serial_counts(q: &QuantTensor, mode: SerialMode) -> Vec<u8> {
    q.data().iter().map(|&c| mode.cycles(c)).collect()
}

/// Maximum serial count over a strided window of a row.
///
/// `start` may be negative or run past the row (zero padding): out-of-range
/// lanes hold zero activations and cost nothing.
#[inline]
pub fn window_max(row: &[u8], start: isize, stride: usize, count: usize) -> u8 {
    let mut best = 0u8;
    let len = row.len() as isize;
    let stride = stride as isize;
    let mut x = start;
    for _ in 0..count {
        if x >= 0 && x < len {
            best = best.max(row[x as usize]);
        }
        x += stride;
    }
    best
}

/// Sum of serial counts over a strided window (the per-lane switching work
/// feeding the PE energy counter).
#[inline]
pub fn window_sum(row: &[u8], start: isize, stride: usize, count: usize) -> u32 {
    let mut sum = 0u32;
    let len = row.len() as isize;
    let stride = stride as isize;
    let mut x = start;
    for _ in 0..count {
        if x >= 0 && x < len {
            sum += u32::from(row[x as usize]);
        }
        x += stride;
    }
    sum
}

/// Per-input-row occupancy of a `(C, H, W)` activation map: `mask[c*H + y]`
/// is `true` when row `y` of channel `c` has at least one non-zero code —
/// exactly the 1-bit activation index the index selector consumes.
pub fn activation_row_nonzero(q: &QuantTensor) -> Vec<bool> {
    let s = q.shape();
    if s.len() != 3 {
        // FC-style flat inputs: treat each element as its own "row".
        return q.data().iter().map(|&c| c != 0).collect();
    }
    let (c, h, w) = (s[0], s[1], s[2]);
    let mut mask = Vec::with_capacity(c * h);
    for row in 0..c * h {
        mask.push(q.data()[row * w..(row + 1) * w].iter().any(|&x| x != 0));
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_tensor::Tensor;

    fn quant(v: Vec<f32>, shape: &[usize]) -> QuantTensor {
        QuantTensor::quantize(&Tensor::from_vec(v, shape).unwrap(), 8).unwrap()
    }

    #[test]
    fn serial_modes_on_zero() {
        assert_eq!(SerialMode::Booth.cycles(0), 0);
        assert_eq!(SerialMode::PlainBits.cycles(0), 0);
        assert_eq!(SerialMode::Unit.cycles(0), 1);
    }

    #[test]
    fn booth_cheaper_than_plain_on_runs() {
        // 0b0111_1110 = 126: 6 set bits, but few Booth digits.
        assert!(SerialMode::Booth.cycles(126) < SerialMode::PlainBits.cycles(126));
    }

    #[test]
    fn window_max_respects_stride_and_padding() {
        let row = [1u8, 5, 2, 7, 3];
        assert_eq!(window_max(&row, 0, 1, 3), 5);
        assert_eq!(window_max(&row, 1, 2, 2), 7); // elements 1 and 3
        assert_eq!(window_max(&row, -2, 1, 3), 1); // two padding lanes
        assert_eq!(window_max(&row, 4, 1, 4), 3); // runs off the end
        assert_eq!(window_max(&row, -10, 1, 2), 0); // fully out of range
    }

    #[test]
    fn window_sum_matches_manual() {
        let row = [1u8, 5, 2, 7, 3];
        assert_eq!(window_sum(&row, 0, 1, 5), 18);
        assert_eq!(window_sum(&row, 0, 2, 3), 1 + 2 + 3);
        assert_eq!(window_sum(&row, -1, 1, 3), 6);
    }

    #[test]
    fn row_mask_flags_nonzero_rows() {
        let q = quant(vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.5], &[2, 2, 2]);
        assert_eq!(activation_row_nonzero(&q), vec![false, true, false, true]);
    }

    #[test]
    fn flat_inputs_use_element_mask() {
        let q = quant(vec![0.0, 1.0, 0.0], &[3]);
        assert_eq!(activation_row_nonzero(&q), vec![false, true, false]);
    }

    #[test]
    fn serial_counts_cover_tensor() {
        let q = quant(vec![0.0, 1.0, 0.25, 0.5], &[4]);
        let counts = serial_counts(&q, SerialMode::Booth);
        assert_eq!(counts.len(), 4);
        assert_eq!(counts[0], 0);
        assert!(counts[1] >= 1);
    }
}
