//! The unit-energy model (Table I of the paper) and the per-component
//! energy breakdown (the legend of Fig. 13).
//!
//! Table I gives per-8-bit (= per byte) unit energies extracted from a
//! commercial 28 nm technology:
//!
//! | component | pJ / 8 bit |
//! |---|---|
//! | DRAM | 100 |
//! | SRAM | 1.36 – 2.45 (by macro size) |
//! | 8-bit MAC | 0.143 |
//! | 8-bit multiplier | 0.124 |
//! | 8-bit adder | 0.019 |
//!
//! Units the paper does not tabulate are derived and documented here:
//! register-file accesses, the RE's shift-and-add, one bit-serial digit
//! cycle, and one index-selector comparison. Each is a small multiple of
//! the published adder/multiplier costs; DESIGN.md lists them as recorded
//! assumptions.

/// Unit energies in picojoules per byte (or per operation).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// DRAM access, pJ per byte (Table I: 100).
    pub dram_pj_per_byte: f64,
    /// SRAM access floor, pJ per byte for the smallest (2 KB) macro.
    pub sram_min_pj_per_byte: f64,
    /// SRAM access ceiling, pJ per byte for the largest (64 KB) macro.
    pub sram_max_pj_per_byte: f64,
    /// One 8-bit multiply-accumulate (Table I: 0.143).
    pub mac_pj: f64,
    /// One 8-bit multiply (Table I: 0.124).
    pub mult_pj: f64,
    /// One 8-bit add (Table I: 0.019).
    pub add_pj: f64,
    /// One register-file byte access (derived: a few fJ-scale flops; we use
    /// 0.03 pJ, an order below the smallest SRAM).
    pub rf_pj_per_byte: f64,
    /// One shift-and-add in the rebuild engine (derived: adder + barrel
    /// shifter ≈ 0.024 pJ).
    pub shift_add_pj: f64,
    /// One bit-serial multiplier digit-cycle (derived: shift-add plus
    /// accumulator toggle ≈ 0.030 pJ; 8 such lanes replace one 8-bit
    /// multiplier, matching the paper's area/energy equivalence).
    pub bit_serial_cycle_pj: f64,
    /// One index-selector comparison (derived: 1-bit compare + mux ≈
    /// 0.002 pJ; the paper reports the selector below 0.05% of total).
    pub index_compare_pj: f64,
    /// Idle energy per lane-cycle (clock tree + leakage while a lane waits;
    /// derived: ~2.5% of a busy digit-cycle). This is what couples latency
    /// to energy in the Fig. 14/15 ablations: a dataflow that leaves lanes
    /// idle longer also burns more energy.
    pub lane_idle_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            dram_pj_per_byte: 100.0,
            sram_min_pj_per_byte: 1.36,
            sram_max_pj_per_byte: 2.45,
            mac_pj: 0.143,
            mult_pj: 0.124,
            add_pj: 0.019,
            rf_pj_per_byte: 0.03,
            shift_add_pj: 0.024,
            bit_serial_cycle_pj: 0.030,
            index_compare_pj: 0.002,
            lane_idle_pj: 0.00075,
        }
    }
}

impl EnergyModel {
    /// SRAM access cost for a macro of `kb` kilobytes, interpolated in
    /// log-capacity between the 2 KB floor and the 64 KB ceiling
    /// (the data-type-driven memory partition of Section IV-B exists
    /// precisely because smaller banks are cheaper per access).
    pub fn sram_pj_per_byte(&self, kb: f64) -> f64 {
        let kb = kb.clamp(2.0, 64.0);
        let t = (kb / 2.0).log2() / 32f64.log2(); // 0 at 2 KB, 1 at 64 KB
        self.sram_min_pj_per_byte + t * (self.sram_max_pj_per_byte - self.sram_min_pj_per_byte)
    }
}

/// Per-component energy totals in picojoules — the stacked bars of
/// Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// DRAM traffic for input activations.
    pub dram_input: f64,
    /// DRAM traffic for output activations.
    pub dram_output: f64,
    /// DRAM traffic for weights (compressed form for SmartExchange).
    pub dram_weight: f64,
    /// DRAM traffic for sparsity indices.
    pub dram_index: f64,
    /// Input global-buffer reads.
    pub input_gb_read: f64,
    /// Input global-buffer writes.
    pub input_gb_write: f64,
    /// Output global-buffer reads.
    pub output_gb_read: f64,
    /// Output global-buffer writes.
    pub output_gb_write: f64,
    /// Weight buffer reads.
    pub weight_gb_read: f64,
    /// Weight buffer writes.
    pub weight_gb_write: f64,
    /// PE array (multipliers / bit-serial lanes).
    pub pe: f64,
    /// Accumulators and adder trees.
    pub accumulator: f64,
    /// Rebuild engines (shift-and-add + basis register file).
    pub re: f64,
    /// Index selector.
    pub index_selector: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total(&self) -> f64 {
        self.dram_input
            + self.dram_output
            + self.dram_weight
            + self.dram_index
            + self.input_gb_read
            + self.input_gb_write
            + self.output_gb_read
            + self.output_gb_write
            + self.weight_gb_read
            + self.weight_gb_write
            + self.pe
            + self.accumulator
            + self.re
            + self.index_selector
    }

    /// Total DRAM energy.
    pub fn dram_total(&self) -> f64 {
        self.dram_input + self.dram_output + self.dram_weight + self.dram_index
    }

    /// Accumulates another breakdown into this one.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.dram_input += other.dram_input;
        self.dram_output += other.dram_output;
        self.dram_weight += other.dram_weight;
        self.dram_index += other.dram_index;
        self.input_gb_read += other.input_gb_read;
        self.input_gb_write += other.input_gb_write;
        self.output_gb_read += other.output_gb_read;
        self.output_gb_write += other.output_gb_write;
        self.weight_gb_read += other.weight_gb_read;
        self.weight_gb_write += other.weight_gb_write;
        self.pe += other.pe;
        self.accumulator += other.accumulator;
        self.re += other.re;
        self.index_selector += other.index_selector;
    }

    /// `(label, pJ)` pairs in the Fig. 13 legend order, for printing.
    pub fn components(&self) -> [(&'static str, f64); 14] {
        [
            ("DRAM input", self.dram_input),
            ("DRAM output", self.dram_output),
            ("DRAM weight", self.dram_weight),
            ("DRAM index", self.dram_index),
            ("input GB (read)", self.input_gb_read),
            ("input GB (write)", self.input_gb_write),
            ("output GB (read)", self.output_gb_read),
            ("output GB (write)", self.output_gb_write),
            ("weight GB (read)", self.weight_gb_read),
            ("weight GB (write)", self.weight_gb_write),
            ("PE", self.pe),
            ("Accumulator", self.accumulator),
            ("RE", self.re),
            ("Index selector", self.index_selector),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let m = EnergyModel::default();
        assert_eq!(m.dram_pj_per_byte, 100.0);
        assert_eq!(m.mac_pj, 0.143);
        assert_eq!(m.mult_pj, 0.124);
        assert_eq!(m.add_pj, 0.019);
    }

    #[test]
    fn memory_hierarchy_ordering_holds() {
        // The premise of the whole paper: DRAM >> SRAM >> compute.
        let m = EnergyModel::default();
        let sram = m.sram_pj_per_byte(16.0);
        assert!(m.dram_pj_per_byte / sram > 9.5);
        assert!(sram > m.mac_pj);
        assert!(m.mac_pj > m.add_pj);
        assert!(m.rf_pj_per_byte < m.sram_min_pj_per_byte);
    }

    #[test]
    fn sram_interpolation_endpoints() {
        let m = EnergyModel::default();
        assert!((m.sram_pj_per_byte(2.0) - 1.36).abs() < 1e-9);
        assert!((m.sram_pj_per_byte(64.0) - 2.45).abs() < 1e-9);
        let mid = m.sram_pj_per_byte(16.0);
        assert!(mid > 1.36 && mid < 2.45);
        // Clamped outside the macro range.
        assert_eq!(m.sram_pj_per_byte(1.0), m.sram_pj_per_byte(2.0));
        assert_eq!(m.sram_pj_per_byte(128.0), m.sram_pj_per_byte(64.0));
    }

    #[test]
    fn breakdown_total_and_accumulate() {
        let mut a = EnergyBreakdown { pe: 1.0, dram_input: 2.0, ..Default::default() };
        let b = EnergyBreakdown { pe: 0.5, re: 0.25, ..Default::default() };
        a.accumulate(&b);
        assert!((a.total() - 3.75).abs() < 1e-12);
        assert!((a.dram_total() - 2.0).abs() < 1e-12);
        assert_eq!(a.components().len(), 14);
    }
}
