//! The SmartExchange accelerator simulator.
//!
//! # Cycle model
//!
//! Standard CONV (`R = S > 1`): output channels map to PE slices, input
//! channels to PE lines, `dimF` adjacent output pixels to the bit-serial
//! MACs of a line. For an output row `e` and pixel group `f0`, a line
//! processes its channel's `R` weight rows back-to-back; one weight row is
//! a 1-D convolution of `S` steps, and each step costs the **maximum**
//! Booth-digit count over the `dimF` activations in the window (lanes run
//! in lockstep; a fully-zero window still costs one issue cycle). Rows are
//! skipped outright — no cycles, no fetches — when the index selector is on
//! and either the coefficient row or the activation row is zero. Lines of a
//! slice run in parallel (the slice finishes with its slowest line), slices
//! run in parallel over filters, channel tiles are sequential passes, so:
//!
//! ```text
//! cycles = Σ_{e, f0, c-tile} max_{slice, line} Σ_{kr active} row_cycles
//! ```
//!
//! 1×1 CONV maps the FC-style reshape onto the same array (lines process
//! `fc_width`-channel coefficient rows); depth-wise CONV uses the dedicated
//! mapping of Section IV-B (kernel rows across PE lines) or, with the
//! dedicated design disabled (Fig. 15 ablation), a single line per channel
//! processing rows sequentially; FC and squeeze-excite layers distribute
//! output neurons over slices × lines (× 2 MAC clusters with the dedicated
//! design).
//!
//! # Memory model
//!
//! Compressed weights (`Ce` codes + basis + 1-bit row index) are fetched
//! from DRAM once and held in the per-slice weight buffers; oversized
//! filters fall back to channel-chunked passes with partial-sum spill.
//! Inputs are fetched once when the needed rows fit the input GB, and
//! re-streamed per output-channel tile otherwise; zero activation rows and
//! rows no filter needs are never fetched. Outputs are written once.
//! Compute and DRAM transfers overlap through double buffering:
//! `total_cycles = max(compute, DRAM bytes / bandwidth)`.
//!
//! # Schedule reuse
//!
//! The data-independent skeleton of a layer pass — which output rows are
//! sampled under `row_sample`, the input row each kernel row reads, the
//! `(f0, nf)` output-pixel groups, the slice-fold width, and the
//! memory-model constants (output-channel tile count, output-element
//! volume, the partial-sum spill target of weight chunking) — is a pure
//! function of the layer geometry and the accelerator configuration. It is
//! captured in a `Schedule` (private to this module), memoized per
//! [`crate::schedule::ScheduleKey`]
//! in a per-run [`crate::schedule::ScheduleCache`], and shared across
//! layers with identical shapes (ResNet164 repeats each bottleneck geometry
//! 18× per stage). Only the data-dependent terms — zero activation rows,
//! Booth-digit window costs, coefficient-row masks, rebuild costs — are
//! re-evaluated per layer, so cache hits are bit-identical to cold builds.

use std::sync::{Arc, OnceLock};

use crate::schedule::{ScheduleCache, ScheduleKey, ScheduleRegistry};
use crate::window::{self, SerialMode};
use crate::{
    Accelerator, HwError, LayerResult, MemCounters, OpCounters, Result, SeAcceleratorConfig,
};
use se_ir::{LayerDesc, LayerKind, LayerTrace, QuantTensor, SeLayer, SeLayout, WeightData};

/// The SmartExchange accelerator (Section IV).
///
/// Holds a per-run schedule cache (see the module docs); cloning shares the
/// cache, and equality compares the configuration only.
#[derive(Debug, Clone, PartialEq)]
pub struct SeAccelerator {
    cfg: SeAcceleratorConfig,
    schedules: ScheduleCache<Schedule>,
}

impl SeAccelerator {
    /// Creates an accelerator with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidConfig`] for invalid configurations.
    pub fn new(cfg: SeAcceleratorConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(SeAccelerator { cfg, schedules: ScheduleCache::default() })
    }

    /// [`SeAccelerator::new`] with the schedule cache drawn from a
    /// process-wide [`ScheduleRegistry`] keyed by the **full**
    /// configuration: every instance constructed with an identical `cfg` —
    /// cluster replicas, one engine per model in a serving sweep, repeated
    /// figure runs — shares one memo table, so each distinct layer
    /// geometry's schedule skeleton is built once per process instead of
    /// once per instance. Results are bit-identical to [`SeAccelerator::new`]
    /// (schedules are pure functions of geometry + configuration); only
    /// [`SeAccelerator::cached_schedules`] counts may differ, since the
    /// shared table outlives any one instance.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidConfig`] for invalid configurations.
    pub fn with_shared_schedules(cfg: SeAcceleratorConfig) -> Result<Self> {
        static REGISTRY: OnceLock<ScheduleRegistry<ConfigKey, Schedule>> = OnceLock::new();
        cfg.validate()?;
        let schedules =
            REGISTRY.get_or_init(ScheduleRegistry::default).cache_for(ConfigKey::of(&cfg));
        Ok(SeAccelerator { cfg, schedules })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SeAcceleratorConfig {
        &self.cfg
    }

    /// Distinct layer geometries scheduled so far (diagnostic: repeated
    /// shapes hit the cache instead of growing this).
    pub fn cached_schedules(&self) -> usize {
        self.schedules.len()
    }

    /// The geometry schedule for `desc`, built once per distinct shape.
    fn schedule_for(&self, desc: &LayerDesc) -> Result<Arc<Schedule>> {
        self.schedules.get_or_try_build(ScheduleKey::for_config(desc, &self.cfg), || {
            Schedule::build(desc, &self.cfg)
        })
    }
}

/// Registry key for [`SeAccelerator::with_shared_schedules`]: **every**
/// field of [`SeAcceleratorConfig`] (`f64`s by exact bit pattern), so two
/// accelerators mapped to the same shared cache are indistinguishable to
/// the schedule builder — the sharing-safety contract of
/// [`ScheduleRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ConfigKey {
    dims: (usize, usize, usize),
    input_gb: (usize, u64),
    output_gb: (usize, u64),
    weight_buf: (usize, u64),
    dram_bytes_per_cycle_bits: u64,
    frequency_hz_bits: u64,
    toggles: (bool, bool, bool, bool),
    row_sample: usize,
}

impl ConfigKey {
    fn of(cfg: &SeAcceleratorConfig) -> Self {
        ConfigKey {
            dims: (cfg.dim_m, cfg.dim_c, cfg.dim_f),
            input_gb: (cfg.input_gb_banks, cfg.input_gb_bank_kb.to_bits()),
            output_gb: (cfg.output_gb_banks, cfg.output_gb_bank_kb.to_bits()),
            weight_buf: (cfg.weight_buf_banks, cfg.weight_buf_bank_kb.to_bits()),
            dram_bytes_per_cycle_bits: cfg.dram_bytes_per_cycle.to_bits(),
            frequency_hz_bits: cfg.frequency_hz.to_bits(),
            toggles: (cfg.bit_serial, cfg.booth_encoder, cfg.index_select, cfg.compact_dedicated),
            row_sample: cfg.row_sample,
        }
    }
}

impl Accelerator for SeAccelerator {
    fn name(&self) -> &str {
        "SmartExchange"
    }

    fn dram_bytes_per_cycle(&self) -> f64 {
        self.cfg.dram_bytes_per_cycle
    }

    fn process_layer(&self, trace: &LayerTrace) -> Result<LayerResult> {
        let desc = trace.desc();
        match *desc.kind() {
            LayerKind::Conv2d { kernel, .. } if kernel > 1 => {
                let sched = self.schedule_for(desc)?;
                conv_layer(&self.cfg, trace, &sched)
            }
            LayerKind::Conv2d { .. } => {
                let sched = self.schedule_for(desc)?;
                pointwise_layer(&self.cfg, trace, &sched)
            }
            LayerKind::DepthwiseConv2d { .. } => {
                let sched = self.schedule_for(desc)?;
                depthwise_layer(&self.cfg, trace, &sched)
            }
            LayerKind::Linear { .. } => fc_layer(&self.cfg, trace),
            LayerKind::SqueezeExcite { .. } => squeeze_excite_layer(&self.cfg, trace),
        }
    }
}

/// The data-independent skeleton of one simulator pass over a spatial
/// (CONV / 1×1 CONV / depth-wise) layer: everything derivable from the
/// layer geometry and the accelerator configuration alone, computed once
/// per distinct shape and reused across repeats.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Schedule {
    /// Output rows simulated under `row_sample`.
    e_rows: Vec<usize>,
    /// Factor scaling sampled totals back to the full layer.
    e_scale: f64,
    /// Kernel rows tracked per output row (`R` for CONV/depth-wise, 1 for
    /// 1×1 CONV).
    r: usize,
    /// `row_iy[ei * r + kr]`: the input row kernel row `kr` reads at
    /// sampled output row `e_rows[ei]`, or `None` for pure padding rows.
    row_iy: Vec<Option<usize>>,
    /// Output-pixel groups `(f0, nf)` with `nf <= eff_f`.
    f_groups: Vec<(usize, usize)>,
    /// Output feature-map height.
    e_out: usize,
    /// Output-channel tiles driving input refetch (`ceil(M / dimM)`; 1 for
    /// depth-wise layers, whose input pass is never repeated per tile).
    m_tiles: u64,
    /// Output elements of one image (`M × E × F`; channels for depth-wise).
    outputs: u64,
    /// Whether a chunked filter's spilled partial sums fit the output GB
    /// (the spill target of `weight_chunking`; DRAM otherwise).
    psum_to_gb: bool,
}

impl Schedule {
    /// Builds the schedule for a spatial layer.
    ///
    /// # Errors
    ///
    /// Propagates invalid output geometry; FC-style layers have no spatial
    /// schedule (the dispatch never requests one).
    fn build(desc: &LayerDesc, cfg: &SeAcceleratorConfig) -> Result<Schedule> {
        let (h, _) = desc.input_hw();
        let (e_out, f_out) = desc.output_hw()?;
        // Narrow layers (fewer filters than slices) fold spare slices into
        // wider output-pixel groups, as the compiler's dataflow selection
        // (Section IV-B) would; depth-wise layers map channels to slices
        // directly and do not fold.
        let (r, stride, padding, eff_f, out_units, m_tiles) = match *desc.kind() {
            LayerKind::Conv2d { out_channels: m, kernel, stride, padding, .. } => {
                let fold = if m < cfg.dim_m { (cfg.dim_m / m.max(1)).clamp(1, 8) } else { 1 };
                let m_tiles = (m as u64).div_ceil(cfg.dim_m as u64);
                (kernel.max(1), stride, padding, cfg.dim_f * fold, m, m_tiles)
            }
            LayerKind::DepthwiseConv2d { channels, kernel, stride, padding } => {
                (kernel, stride, padding, cfg.dim_f, channels, 1)
            }
            LayerKind::Linear { .. } | LayerKind::SqueezeExcite { .. } => {
                return Err(HwError::UnsupportedTrace {
                    reason: format!(
                        "layer {}: FC-style layers have no spatial schedule",
                        desc.name()
                    ),
                })
            }
        };
        let (e_rows, e_scale) = sampled_rows(e_out, cfg.row_sample);
        let mut row_iy = Vec::with_capacity(e_rows.len() * r);
        for &e in &e_rows {
            for kr in 0..r {
                let iy = (e * stride + kr) as isize - padding as isize;
                row_iy.push(if iy < 0 || iy as usize >= h { None } else { Some(iy as usize) });
            }
        }
        let mut f_groups = Vec::new();
        let mut f0 = 0;
        while f0 < f_out {
            f_groups.push((f0, eff_f.min(f_out - f0)));
            f0 += eff_f;
        }
        // Memory-model constants, folded into the cached skeleton so batch
        // replays of a geometry never recompute them.
        let outputs = (out_units * e_out * f_out) as u64;
        let tile_psums = (cfg.dim_m as u64) * 2 * outputs.div_ceil(cfg.dim_m as u64).max(1);
        let psum_to_gb =
            (tile_psums as f64) <= cfg.output_gb_banks as f64 * cfg.output_gb_bank_kb * 1024.0;
        Ok(Schedule { e_rows, e_scale, r, row_iy, f_groups, e_out, m_tiles, outputs, psum_to_gb })
    }

    /// The input row kernel row `kr` reads at sampled output row index
    /// `ei`, or `None` for pure padding rows.
    #[inline]
    fn input_row(&self, ei: usize, kr: usize) -> Option<usize> {
        self.row_iy[ei * self.r + kr]
    }
}

/// Weight information normalised for the cycle model.
struct PreparedWeights {
    /// Coefficient rows per filter.
    rows_per_filter: usize,
    /// Non-zeros per coefficient row, `filters × rows_per_filter`,
    /// row-major by filter. For dense weights every row counts as full.
    nnz_row: Vec<u16>,
    /// Per row position: does *any* filter have a non-zero there
    /// (drives shared activation fetches).
    any_row: Vec<bool>,
    /// DRAM bytes for coefficients+basis (or dense weights).
    weight_bytes: u64,
    /// DRAM bytes for the 1-bit row index (zero for dense).
    index_bytes: u64,
    /// Basis bytes (subset of `weight_bytes`, read into RE register files).
    basis_bytes: u64,
    /// Total non-zero coefficients.
    total_nnz: u64,
    /// Whether weights are in SmartExchange form.
    is_se: bool,
}

impl PreparedWeights {
    #[inline]
    fn row_nnz(&self, filter: usize, row: usize) -> u16 {
        self.nnz_row[filter * self.rows_per_filter + row]
    }
}

fn se_storage_bytes(layer: &SeLayer) -> (u64, u64, u64) {
    let s = se_ir::storage::se_layer_storage(layer);
    ((s.ce_bits + s.basis_bits).div_ceil(8), s.index_bits.div_ceil(8), s.basis_bits.div_ceil(8))
}

/// Builds [`PreparedWeights`] from an SE layer whose layout units map to
/// "filters" (works for both `ConvPerFilter` and `FcPerRow`).
fn prepare_se(layer: &SeLayer) -> PreparedWeights {
    let (filters, per_unit_slices) = match *layer.layout() {
        SeLayout::ConvPerFilter { out_channels, slices_per_filter, .. } => {
            (out_channels, slices_per_filter)
        }
        SeLayout::FcPerRow { out_features, slices_per_row, .. } => (out_features, slices_per_row),
    };
    let rows_per_filter = layer.layout().rows_per_unit();
    let mut nnz_row = Vec::with_capacity(filters * rows_per_filter);
    for unit in layer.slices().chunks(per_unit_slices) {
        for slice in unit {
            let ce = slice.ce();
            for r in 0..ce.rows() {
                let nnz = ce.row(r).iter().filter(|&&x| x != 0.0).count() as u16;
                nnz_row.push(nnz);
            }
        }
    }
    let mut any_row = vec![false; rows_per_filter];
    for f in 0..filters {
        for r in 0..rows_per_filter {
            if nnz_row[f * rows_per_filter + r] > 0 {
                any_row[r] = true;
            }
        }
    }
    let (weight_bytes, index_bytes, basis_bytes) = se_storage_bytes(layer);
    let total_nnz = layer.nnz() as u64;
    PreparedWeights {
        rows_per_filter,
        nnz_row,
        any_row,
        weight_bytes,
        index_bytes,
        basis_bytes,
        total_nnz,
        is_se: true,
    }
}

/// Dense weights presented through the accelerator's original-weight path
/// (MUX1 path ③): no sparsity metadata, every row processed.
fn prepare_dense(filters: usize, rows_per_filter: usize, row_len: usize) -> PreparedWeights {
    PreparedWeights {
        rows_per_filter,
        nnz_row: vec![row_len as u16; filters * rows_per_filter],
        any_row: vec![true; rows_per_filter],
        weight_bytes: (filters * rows_per_filter * row_len) as u64,
        index_bytes: 0,
        basis_bytes: 0,
        total_nnz: (filters * rows_per_filter * row_len) as u64,
        is_se: false,
    }
}

fn serial_mode(cfg: &SeAcceleratorConfig) -> SerialMode {
    match (cfg.bit_serial, cfg.booth_encoder) {
        (true, true) => SerialMode::Booth,
        (true, false) => SerialMode::PlainBits,
        (false, _) => SerialMode::Unit,
    }
}

#[inline]
fn step_cost(wmax: u8) -> u64 {
    u64::from(wmax.max(1))
}

/// Output rows to simulate under `row_sample`, plus the factor that scales
/// sampled totals back to the full layer.
fn sampled_rows(e_out: usize, row_sample: usize) -> (Vec<usize>, f64) {
    let rs = row_sample.max(1);
    let rows: Vec<usize> = (0..e_out).step_by(rs).collect();
    let scale = if rows.is_empty() { 1.0 } else { e_out as f64 / rows.len() as f64 };
    (rows, scale)
}

#[inline]
fn scale_u64(v: u64, s: f64) -> u64 {
    if s == 1.0 {
        v
    } else {
        (v as f64 * s).round() as u64
    }
}

/// DRAM input traffic with tiling-aware refetch: one pass when the needed
/// bytes fit the input GB, one pass per output-channel tile otherwise.
fn input_dram_bytes(cfg: &SeAcceleratorConfig, needed_bytes: u64, m_tiles: u64) -> u64 {
    if (needed_bytes as f64) <= cfg.input_gb_bytes() {
        needed_bytes
    } else {
        needed_bytes * m_tiles.max(1)
    }
}

/// Weight-buffer overflow handling: filters whose compressed form exceeds
/// the per-slice buffer are processed in channel chunks with partial sums
/// spilled between passes. Returns `(chunks, spill_bytes)`; the spill goes
/// to the output GB when a slice tile's partial sums fit (the cached
/// `Schedule::psum_to_gb` constant), else DRAM.
fn weight_chunking(
    cfg: &SeAcceleratorConfig,
    per_filter_bytes: u64,
    sched: &Schedule,
) -> (u64, u64) {
    let buf = (cfg.weight_buf_banks as f64 * cfg.weight_buf_bank_kb * 1024.0) as u64;
    let chunks = per_filter_bytes.div_ceil(buf.max(1)).max(1);
    if chunks <= 1 {
        return (1, 0);
    }
    // 16-bit partial sums, written and re-read once per extra chunk.
    (chunks, 2 * (chunks - 1) * sched.outputs * 2)
}

fn finish(
    cfg: &SeAcceleratorConfig,
    name: &str,
    compute_cycles: u64,
    mem: MemCounters,
    mut ops: OpCounters,
) -> LayerResult {
    let dram_cycles = (mem.dram_total_bytes() as f64 / cfg.dram_bytes_per_cycle).ceil() as u64;
    let lanes = cfg.total_lanes() as u64;
    let busy = ops.pe_lane_cycles + ops.macs;
    ops.idle_lane_cycles = (compute_cycles * lanes).saturating_sub(busy);
    LayerResult {
        name: name.to_string(),
        compute_cycles,
        dram_cycles,
        total_cycles: compute_cycles.max(dram_cycles),
        mem,
        ops,
    }
}

/// Extracts the single SE part or signals a dense layer.
fn weight_form(trace: &LayerTrace) -> Result<Option<&SeLayer>> {
    match trace.weights() {
        WeightData::Se(parts) if parts.len() == 1 => Ok(Some(&parts[0])),
        WeightData::Se(parts) => Err(HwError::UnsupportedTrace {
            reason: format!(
                "layer {} carries {} SE parts where 1 is expected",
                trace.desc().name(),
                parts.len()
            ),
        }),
        WeightData::Dense(_) => Ok(None),
    }
}

/// Standard CONV path (`R = S > 1`).
fn conv_layer(
    cfg: &SeAcceleratorConfig,
    trace: &LayerTrace,
    sched: &Schedule,
) -> Result<LayerResult> {
    let desc = trace.desc();
    let LayerKind::Conv2d { in_channels: c, out_channels: m, kernel, stride, padding } =
        *desc.kind()
    else {
        unreachable!("dispatch guarantees Conv2d");
    };
    let (h, w) = desc.input_hw();
    let e_out = sched.e_out;
    let r = kernel;
    let s = kernel;

    let pw = match weight_form(trace)? {
        Some(layer) => {
            if layer.layout().rows_per_unit() != c * r {
                return Err(HwError::UnsupportedTrace {
                    reason: format!(
                        "layer {}: SE rows {} do not match C*R = {}",
                        desc.name(),
                        layer.layout().rows_per_unit(),
                        c * r
                    ),
                });
            }
            prepare_se(layer)
        }
        None => prepare_dense(m, c * r, s),
    };

    let q = trace.input();
    let mode = serial_mode(cfg);
    let sc = window::serial_counts(q, mode);
    let act_nz = window::activation_row_nonzero(q);

    let (dim_m, dim_c) = (cfg.dim_m, cfg.dim_c);
    let mut compute: u64 = 0;
    let mut pe_busy: u64 = 0;
    let mut acc_adds: u64 = 0;
    let mut gb_in_read: u64 = 0;
    let mut index_compares: u64 = 0;

    // Scratch per (e, f0): row cycle/energy tables over (c, kr).
    let mut t_row = vec![0u64; c * r];
    let mut e_row = vec![0u64; c * r];
    let mut processed = vec![false; c * r];

    let e_scale = sched.e_scale;
    // Per-filter pooled work for one output row: the index selector
    // dispatches (coefficient row, pixel group) pairs from the layer-wide
    // index to whichever PE line is free, so a slice's work pools across
    // both the f0 groups and the channels of the output row.
    let mut slice_work = vec![0u64; m];
    let mut slice_longest = vec![0u64; m];
    let mut line_total = vec![0u64; c];
    for ei in 0..sched.e_rows.len() {
        slice_work.fill(0);
        slice_longest.fill(0);
        line_total.fill(0);
        for &(f0, nf) in &sched.f_groups {
            // Phase 1: per-(channel, kernel-row) costs, shared by all slices.
            for ci in 0..c {
                for kr in 0..r {
                    let idx = ci * r + kr;
                    let Some(iy) = sched.input_row(ei, kr) else {
                        // Pure padding row: no hardware iterates it.
                        t_row[idx] = 0;
                        e_row[idx] = 0;
                        processed[idx] = false;
                        continue;
                    };
                    let act_live = act_nz[ci * h + iy];
                    // Index selector: zero activation rows are skipped for
                    // every filter; one compare per considered row.
                    if cfg.index_select {
                        index_compares += 1;
                    }
                    if cfg.index_select && !act_live {
                        t_row[idx] = 0;
                        e_row[idx] = 0;
                        processed[idx] = false;
                        continue;
                    }
                    let row_sc = &sc[(ci * h + iy) * w..(ci * h + iy + 1) * w];
                    let mut cycles = 0u64;
                    let mut energy = 0u64;
                    for si in 0..s {
                        let start = (f0 * stride + si) as isize - padding as isize;
                        cycles += step_cost(window::window_max(row_sc, start, stride, nf));
                        energy += u64::from(window::window_sum(row_sc, start, stride, nf));
                    }
                    t_row[idx] = cycles;
                    e_row[idx] = energy;
                    processed[idx] = true;
                }
            }
            // Shared activation fetches: a row segment is read once per
            // (e, f0) if any filter needs it.
            let seg_bytes = ((nf - 1) * stride + s) as u64;
            #[allow(clippy::needless_range_loop)]
            for idx in 0..c * r {
                if processed[idx] && (!cfg.index_select || pw.any_row[idx]) {
                    gb_in_read += seg_bytes;
                }
            }
            // Accumulate pooled work per filter (compacted dispatch) or
            // per line (static ownership).
            if cfg.index_select {
                for fi in 0..m {
                    for idx in 0..c * r {
                        if !processed[idx] {
                            continue;
                        }
                        index_compares += 1;
                        if pw.row_nnz(fi, idx) > 0 {
                            slice_work[fi] += t_row[idx];
                            slice_longest[fi] = slice_longest[fi].max(t_row[idx]);
                            pe_busy += e_row[idx];
                            acc_adds += (s * nf) as u64;
                        }
                    }
                }
            } else {
                // Static line ownership: every filter pays the same line
                // times (no per-filter skipping hardware).
                #[allow(clippy::needless_range_loop)]
                for ci in 0..c {
                    for kr in 0..r {
                        let idx = ci * r + kr;
                        if !processed[idx] {
                            continue;
                        }
                        line_total[ci] += t_row[idx];
                        pe_busy += e_row[idx] * m as u64;
                        acc_adds += (s * nf * m) as u64;
                    }
                }
            }
        }
        // Close the output row: slices (filters) run in parallel within an
        // m-tile; m-tiles are sequential passes.
        if cfg.index_select {
            for m0 in (0..m).step_by(dim_m) {
                let m_hi = (m0 + dim_m).min(m);
                let mut tile_max = 0u64;
                for fi in m0..m_hi {
                    let t = slice_work[fi].div_ceil(dim_c as u64).max(slice_longest[fi]);
                    tile_max = tile_max.max(t);
                }
                compute += tile_max;
            }
        } else {
            let m_tiles = m.div_ceil(dim_m) as u64;
            for c0 in (0..c).step_by(dim_c) {
                let c_hi = (c0 + dim_c).min(c);
                let line_max = (c0..c_hi).map(|ci| line_total[ci]).max().unwrap_or(0);
                compute += line_max * m_tiles;
            }
        }
    }

    compute = scale_u64(compute, e_scale);
    pe_busy = scale_u64(pe_busy, e_scale);
    acc_adds = scale_u64(acc_adds, e_scale);
    gb_in_read = scale_u64(gb_in_read, e_scale);
    index_compares = scale_u64(index_compares, e_scale);

    // Rebuild engine: active coefficient rows are rebuilt once per output
    // row (the rebuilt row stays registered across the f0 tiles).
    let mut rebuild: u64 = 0;
    let mut active_row_codes: u64 = 0;
    if pw.is_se {
        for fi in 0..m {
            for idx in 0..c * r {
                if pw.row_nnz(fi, idx) > 0 {
                    rebuild += u64::from(pw.row_nnz(fi, idx)) * s as u64;
                    active_row_codes += s as u64;
                }
            }
        }
        rebuild *= e_out as u64;
        active_row_codes *= e_out as u64;
    }

    // Memory accounting (volume/tiling constants from the cached schedule).
    let outputs = sched.outputs;
    let per_filter_bytes = (pw.weight_bytes + pw.index_bytes).div_ceil(m.max(1) as u64);
    let (_, spill) = weight_chunking(cfg, per_filter_bytes, sched);
    let spill_to_gb = sched.psum_to_gb;

    // Needed input rows: non-zero rows of channels any filter uses.
    let mut needed_in: u64 = 0;
    for ci in 0..c {
        let channel_needed = !cfg.index_select || (0..r).any(|kr| pw.any_row[ci * r + kr]);
        if !channel_needed {
            continue;
        }
        for y in 0..h {
            if !cfg.index_select || act_nz[ci * h + y] {
                needed_in += w as u64;
            }
        }
    }
    let m_tiles = sched.m_tiles;
    let dram_in = input_dram_bytes(cfg, needed_in, m_tiles);

    let code_bits = 4u64; // 4-bit coefficients in the paper's configuration
    let weight_gb_read = if pw.is_se {
        active_row_codes * code_bits / 8 + pw.basis_bytes + pw.index_bytes
    } else {
        // Dense: each weight row re-read per output row.
        (m * c * r * s) as u64 * e_out as u64
    };

    let mem = MemCounters {
        dram_input_bytes: dram_in,
        dram_output_bytes: outputs + if spill_to_gb { 0 } else { spill },
        dram_weight_bytes: pw.weight_bytes,
        dram_index_bytes: pw.index_bytes,
        input_gb_read_bytes: gb_in_read,
        input_gb_write_bytes: dram_in,
        output_gb_read_bytes: if spill_to_gb { spill / 2 } else { 0 },
        output_gb_write_bytes: outputs + if spill_to_gb { spill / 2 } else { 0 },
        weight_gb_read_bytes: weight_gb_read,
        weight_gb_write_bytes: pw.weight_bytes + pw.index_bytes,
        rf_bytes: rebuild + pw.basis_bytes * m_tiles,
    };
    let ops = OpCounters {
        pe_lane_cycles: if cfg.bit_serial { pe_busy } else { 0 },
        macs: if cfg.bit_serial { 0 } else { pe_busy },
        accumulator_adds: acc_adds,
        rebuild_shift_adds: rebuild,
        index_compares,
        idle_lane_cycles: 0,
    };
    Ok(finish(cfg, desc.name(), compute, mem, ops))
}

/// 1×1 CONV path: FC-style coefficient rows (groups of `fc_width` input
/// channels) mapped onto PE lines, output pixels onto MACs.
fn pointwise_layer(
    cfg: &SeAcceleratorConfig,
    trace: &LayerTrace,
    sched: &Schedule,
) -> Result<LayerResult> {
    let desc = trace.desc();
    let LayerKind::Conv2d { in_channels: c, out_channels: m, stride, padding, .. } = *desc.kind()
    else {
        unreachable!("dispatch guarantees Conv2d");
    };
    let (h, w) = desc.input_hw();
    let e_out = sched.e_out;

    let (pw, group) = match weight_form(trace)? {
        Some(layer) => {
            let SeLayout::FcPerRow { width, .. } = *layer.layout() else {
                return Err(HwError::UnsupportedTrace {
                    reason: format!("layer {}: 1x1 CONV expects FcPerRow SE layout", desc.name()),
                });
            };
            (prepare_se(layer), width)
        }
        None => (prepare_dense(m, c, 1), 1),
    };
    let groups = pw.rows_per_filter;

    let q = trace.input();
    let mode = serial_mode(cfg);
    let sc = window::serial_counts(q, mode);
    let act_nz = window::activation_row_nonzero(q);

    let (dim_m, dim_c) = (cfg.dim_m, cfg.dim_c);
    let mut compute: u64 = 0;
    let mut pe_busy: u64 = 0;
    let mut acc_adds: u64 = 0;
    let mut gb_in_read: u64 = 0;
    let mut index_compares: u64 = 0;

    let mut t_row = vec![0u64; groups];
    let mut e_row = vec![0u64; groups];
    let mut live = vec![false; groups];
    let mut lanes = vec![0u64; groups];

    let e_scale = sched.e_scale;
    for ei in 0..sched.e_rows.len() {
        let Some(iy) = sched.input_row(ei, 0) else {
            continue;
        };
        for &(f0, nf) in &sched.f_groups {
            for g in 0..groups {
                let c_lo = g * group;
                let c_hi = (c_lo + group).min(c);
                let mut cycles = 0u64;
                let mut energy = 0u64;
                let mut act_live = false;
                let mut active_lanes = 0u64;
                for ci in c_lo..c_hi {
                    if act_nz[ci * h + iy] {
                        act_live = true;
                    }
                    let row_sc = &sc[(ci * h + iy) * w..(ci * h + iy + 1) * w];
                    let start = (f0 * stride) as isize - padding as isize;
                    cycles += step_cost(window::window_max(row_sc, start, stride, nf));
                    energy += u64::from(window::window_sum(row_sc, start, stride, nf));
                    active_lanes += nf as u64;
                }
                if cfg.index_select {
                    index_compares += 1;
                }
                if cfg.index_select && !act_live {
                    live[g] = false;
                    continue;
                }
                live[g] = true;
                t_row[g] = cycles;
                e_row[g] = energy;
                lanes[g] = active_lanes;
            }
            let seg_bytes = (((nf - 1) * stride + 1) * group) as u64;
            #[allow(clippy::needless_range_loop)]
            for g in 0..groups {
                if live[g] && (!cfg.index_select || pw.any_row[g]) {
                    gb_in_read += seg_bytes;
                }
            }
            for m0 in (0..m).step_by(dim_m) {
                let m_hi = (m0 + dim_m).min(m);
                for g0 in (0..groups).step_by(dim_c) {
                    let g_hi = (g0 + dim_c).min(groups);
                    let mut tile_max = 0u64;
                    for fi in m0..m_hi {
                        let slice_time = if cfg.index_select {
                            let mut work = 0u64;
                            let mut longest = 0u64;
                            for g in g0..g_hi {
                                if !live[g] {
                                    continue;
                                }
                                index_compares += 1;
                                if pw.row_nnz(fi, g) > 0 {
                                    work += t_row[g];
                                    longest = longest.max(t_row[g]);
                                    pe_busy += e_row[g];
                                    acc_adds += lanes[g];
                                }
                            }
                            work.div_ceil(dim_c as u64).max(longest)
                        } else {
                            let mut line_max = 0u64;
                            for g in g0..g_hi {
                                if !live[g] {
                                    continue;
                                }
                                line_max = line_max.max(t_row[g]);
                                pe_busy += e_row[g];
                                acc_adds += lanes[g];
                            }
                            line_max
                        };
                        tile_max = tile_max.max(slice_time);
                    }
                    compute += tile_max;
                }
            }
        }
    }

    compute = scale_u64(compute, e_scale);
    pe_busy = scale_u64(pe_busy, e_scale);
    acc_adds = scale_u64(acc_adds, e_scale);
    gb_in_read = scale_u64(gb_in_read, e_scale);
    index_compares = scale_u64(index_compares, e_scale);

    let mut rebuild: u64 = 0;
    if pw.is_se {
        for fi in 0..m {
            for g in 0..groups {
                rebuild += u64::from(pw.row_nnz(fi, g)) * group as u64;
            }
        }
        rebuild *= e_out as u64;
    }

    let outputs = sched.outputs;
    let needed_in: u64 = (0..c)
        .map(|ci| {
            (0..h).filter(|&y| !cfg.index_select || act_nz[ci * h + y]).count() as u64 * w as u64
        })
        .sum();
    let m_tiles = sched.m_tiles;
    let dram_in = input_dram_bytes(cfg, needed_in, m_tiles);

    let mem = MemCounters {
        dram_input_bytes: dram_in,
        dram_output_bytes: outputs,
        dram_weight_bytes: pw.weight_bytes,
        dram_index_bytes: pw.index_bytes,
        input_gb_read_bytes: gb_in_read,
        input_gb_write_bytes: dram_in,
        output_gb_read_bytes: 0,
        output_gb_write_bytes: outputs,
        weight_gb_read_bytes: pw.weight_bytes + pw.index_bytes,
        weight_gb_write_bytes: pw.weight_bytes + pw.index_bytes,
        rf_bytes: rebuild + pw.basis_bytes * m_tiles,
    };
    let ops = OpCounters {
        pe_lane_cycles: if cfg.bit_serial { pe_busy } else { 0 },
        macs: if cfg.bit_serial { 0 } else { pe_busy },
        accumulator_adds: acc_adds,
        rebuild_shift_adds: rebuild,
        index_compares,
        idle_lane_cycles: 0,
    };
    Ok(finish(cfg, desc.name(), compute, mem, ops))
}

/// Depth-wise CONV: with the dedicated design, kernel rows run on parallel
/// PE lines and channels map across slices; without it, one line per
/// channel processes the rows sequentially (Fig. 15 ablation).
fn depthwise_layer(
    cfg: &SeAcceleratorConfig,
    trace: &LayerTrace,
    sched: &Schedule,
) -> Result<LayerResult> {
    let desc = trace.desc();
    let LayerKind::DepthwiseConv2d { channels: c, kernel, stride, padding } = *desc.kind() else {
        unreachable!("dispatch guarantees DepthwiseConv2d");
    };
    let (h, w) = desc.input_hw();
    let e_out = sched.e_out;
    let r = kernel;
    let s = kernel;

    let pw = match weight_form(trace)? {
        Some(layer) => prepare_se(layer),
        None => prepare_dense(c, r, s),
    };

    let q = trace.input();
    let mode = serial_mode(cfg);
    let sc = window::serial_counts(q, mode);
    let act_nz = window::activation_row_nonzero(q);

    let dim_m = cfg.dim_m;
    let mut compute: u64 = 0;
    let mut pe_busy: u64 = 0;
    let mut acc_adds: u64 = 0;
    let mut gb_in_read: u64 = 0;
    let mut index_compares: u64 = 0;

    let e_scale = sched.e_scale;
    for ei in 0..sched.e_rows.len() {
        for &(f0, nf) in &sched.f_groups {
            let seg_bytes = ((nf - 1) * stride + s) as u64;
            for c0 in (0..c).step_by(dim_m) {
                let c_hi = (c0 + dim_m).min(c);
                let mut tile_max = 0u64;
                for ci in c0..c_hi {
                    let mut row_times = [0u64; 16];
                    debug_assert!(r <= 16, "kernel rows exceed scratch");
                    #[allow(clippy::needless_range_loop)]
                    for kr in 0..r {
                        let Some(iy) = sched.input_row(ei, kr) else {
                            continue;
                        };
                        if cfg.index_select {
                            index_compares += 1;
                        }
                        let act_live = act_nz[ci * h + iy];
                        let coeff_live = pw.row_nnz(ci, kr) > 0;
                        if cfg.index_select && (!act_live || !coeff_live) {
                            continue;
                        }
                        let row_sc = &sc[(ci * h + iy) * w..(ci * h + iy + 1) * w];
                        let mut cycles = 0u64;
                        let mut energy = 0u64;
                        for si in 0..s {
                            let start = (f0 * stride + si) as isize - padding as isize;
                            cycles += step_cost(window::window_max(row_sc, start, stride, nf));
                            energy += u64::from(window::window_sum(row_sc, start, stride, nf));
                        }
                        row_times[kr] = cycles;
                        pe_busy += energy;
                        acc_adds += (s * nf) as u64;
                        gb_in_read += seg_bytes;
                    }
                    let channel_time: u64 = if cfg.compact_dedicated {
                        // Kernel rows on parallel PE lines.
                        row_times[..r].iter().copied().max().unwrap_or(0)
                    } else {
                        // Single line processes rows back-to-back.
                        row_times[..r].iter().sum()
                    };
                    tile_max = tile_max.max(channel_time);
                }
                compute += tile_max;
            }
        }
    }

    compute = scale_u64(compute, e_scale);
    pe_busy = scale_u64(pe_busy, e_scale);
    acc_adds = scale_u64(acc_adds, e_scale);
    gb_in_read = scale_u64(gb_in_read, e_scale);
    index_compares = scale_u64(index_compares, e_scale);

    let mut rebuild: u64 = 0;
    if pw.is_se {
        rebuild = pw.total_nnz * s as u64 * e_out as u64;
    }
    let outputs = sched.outputs;
    let needed_in: u64 =
        (0..c * h).filter(|&row| !cfg.index_select || act_nz[row]).count() as u64 * w as u64;
    let dram_in = input_dram_bytes(cfg, needed_in, sched.m_tiles);

    let mem = MemCounters {
        dram_input_bytes: dram_in,
        dram_output_bytes: outputs,
        dram_weight_bytes: pw.weight_bytes,
        dram_index_bytes: pw.index_bytes,
        input_gb_read_bytes: gb_in_read,
        input_gb_write_bytes: dram_in,
        output_gb_read_bytes: 0,
        output_gb_write_bytes: outputs,
        weight_gb_read_bytes: pw.weight_bytes + pw.index_bytes,
        weight_gb_write_bytes: pw.weight_bytes + pw.index_bytes,
        rf_bytes: rebuild + pw.basis_bytes,
    };
    let ops = OpCounters {
        pe_lane_cycles: if cfg.bit_serial { pe_busy } else { 0 },
        macs: if cfg.bit_serial { 0 } else { pe_busy },
        accumulator_adds: acc_adds,
        rebuild_shift_adds: rebuild,
        index_compares,
        idle_lane_cycles: 0,
    };
    Ok(finish(cfg, desc.name(), compute, mem, ops))
}

/// Work (serial cycles) for one output neuron of an FC matrix given its
/// prepared weights and the flat activation serial counts.
fn fc_neuron_work(
    cfg: &SeAcceleratorConfig,
    pw: &PreparedWeights,
    filter: usize,
    group: usize,
    sc: &[u8],
) -> (u64, u64, u64) {
    let mut cycles = 0u64;
    let mut energy = 0u64;
    let mut adds = 0u64;
    for g in 0..pw.rows_per_filter {
        let coeff_live = pw.row_nnz(filter, g) > 0;
        if cfg.index_select && !coeff_live {
            continue;
        }
        let lo = g * group;
        let hi = (lo + group).min(sc.len());
        if lo >= sc.len() {
            continue;
        }
        let seg = &sc[lo..hi];
        if cfg.index_select && seg.iter().all(|&x| x == 0) {
            continue;
        }
        for &x in seg {
            cycles += step_cost(x);
            energy += u64::from(x);
        }
        adds += seg.len() as u64;
    }
    (cycles, energy, adds)
}

/// FC path: output neurons distributed over slices × lines (× 2 clusters
/// with the dedicated compact-model design).
fn fc_layer(cfg: &SeAcceleratorConfig, trace: &LayerTrace) -> Result<LayerResult> {
    let desc = trace.desc();
    let LayerKind::Linear { in_features: c, out_features: m } = *desc.kind() else {
        unreachable!("dispatch guarantees Linear");
    };
    let (pw, group) = match weight_form(trace)? {
        Some(layer) => {
            let SeLayout::FcPerRow { width, .. } = *layer.layout() else {
                return Err(HwError::UnsupportedTrace {
                    reason: format!("layer {}: FC expects FcPerRow SE layout", desc.name()),
                });
            };
            (prepare_se(layer), width)
        }
        None => (prepare_dense(m, c, 1), 1),
    };

    let q = trace.input();
    let mode = serial_mode(cfg);
    let sc = window::serial_counts(q, mode);
    let (compute, mem, ops) = fc_engine(cfg, &pw, group, &sc, m, c)?;
    Ok(finish(cfg, desc.name(), compute, mem, ops))
}

/// Shared FC cycle/memory engine (used by both FC and squeeze-excite).
fn fc_engine(
    cfg: &SeAcceleratorConfig,
    pw: &PreparedWeights,
    group: usize,
    sc: &[u8],
    m: usize,
    c: usize,
) -> Result<(u64, MemCounters, OpCounters)> {
    let clusters = if cfg.compact_dedicated { 2 } else { 1 };
    let units = cfg.dim_m * cfg.dim_c * clusters;
    let mut unit_work = vec![0u64; units.max(1)];
    let mut pe_busy = 0u64;
    let mut acc_adds = 0u64;
    let mut index_compares = 0u64;
    for fi in 0..m {
        let (cy, en, adds) = fc_neuron_work(cfg, pw, fi, group, sc);
        unit_work[fi % units] += cy;
        pe_busy += en;
        acc_adds += adds;
        if cfg.index_select {
            index_compares += pw.rows_per_filter as u64;
        }
    }
    let compute = unit_work.iter().copied().max().unwrap_or(0);
    let rebuild = if pw.is_se { pw.total_nnz * group as u64 } else { 0 };

    let input_bytes = c as u64;
    let mem = MemCounters {
        dram_input_bytes: input_bytes,
        dram_output_bytes: m as u64,
        dram_weight_bytes: pw.weight_bytes,
        dram_index_bytes: pw.index_bytes,
        input_gb_read_bytes: input_bytes * (m as u64).div_ceil(units as u64).max(1),
        input_gb_write_bytes: input_bytes,
        output_gb_read_bytes: 0,
        output_gb_write_bytes: m as u64,
        weight_gb_read_bytes: pw.weight_bytes + pw.index_bytes,
        weight_gb_write_bytes: pw.weight_bytes + pw.index_bytes,
        rf_bytes: rebuild + pw.basis_bytes,
    };
    let ops = OpCounters {
        pe_lane_cycles: if cfg.bit_serial { pe_busy } else { 0 },
        macs: if cfg.bit_serial { 0 } else { pe_busy },
        accumulator_adds: acc_adds,
        rebuild_shift_adds: rebuild,
        index_compares,
        idle_lane_cycles: 0,
    };
    Ok((compute, mem, ops))
}

/// Squeeze-and-excite: global pool, two FC matrices (executed on the FC
/// engine), and the channel-wise rescale of the feature map.
fn squeeze_excite_layer(cfg: &SeAcceleratorConfig, trace: &LayerTrace) -> Result<LayerResult> {
    let desc = trace.desc();
    let LayerKind::SqueezeExcite { channels, reduced } = *desc.kind() else {
        unreachable!("dispatch guarantees SqueezeExcite");
    };
    let (h, w) = desc.input_hw();
    let q = trace.input();

    // Pooled per-channel means (computable exactly from the trace).
    let per = h * w;
    let mut pooled = Vec::with_capacity(channels);
    for ch in 0..channels {
        let sum: i64 = q.data()[ch * per..(ch + 1) * per].iter().map(|&x| i64::from(x)).sum();
        pooled.push(sum as f32 * q.scale() / per as f32);
    }
    let pooled_t = se_tensor::Tensor::from_vec(pooled, &[channels])?;
    let pooled_q = QuantTensor::quantize(&pooled_t, 8)?;

    let (squeeze_pw, excite_pw, group, fc1_out) = match trace.weights() {
        WeightData::Se(parts) if parts.len() == 2 => {
            let g = match *parts[0].layout() {
                SeLayout::FcPerRow { width, .. } => width,
                SeLayout::ConvPerFilter { .. } => {
                    return Err(HwError::UnsupportedTrace {
                        reason: format!(
                            "layer {}: squeeze-excite expects FcPerRow parts",
                            desc.name()
                        ),
                    })
                }
            };
            // Compute the FC1 output to feed FC2's activation statistics.
            let w1 = parts[0].reconstruct_weights()?; // (reduced, channels)
            let x = pooled_q.dequantize();
            let y: Vec<f32> = (0..reduced)
                .map(|i| {
                    let row = &w1.data()[i * channels..(i + 1) * channels];
                    row.iter().zip(x.data()).map(|(&a, &b)| a * b).sum::<f32>().max(0.0)
                })
                .collect();
            (
                prepare_se(&parts[0]),
                prepare_se(&parts[1]),
                g,
                QuantTensor::quantize(&se_tensor::Tensor::from_vec(y, &[reduced])?, 8)?,
            )
        }
        WeightData::Dense(_) => {
            let ones = se_tensor::Tensor::full(&[reduced], 1.0);
            (
                prepare_dense(reduced, channels, 1),
                prepare_dense(channels, reduced, 1),
                1,
                QuantTensor::quantize(&ones, 8)?,
            )
        }
        WeightData::Se(parts) => {
            return Err(HwError::UnsupportedTrace {
                reason: format!(
                    "layer {}: squeeze-excite expects 2 SE parts, found {}",
                    desc.name(),
                    parts.len()
                ),
            })
        }
    };

    let mode = serial_mode(cfg);
    let sc1 = window::serial_counts(&pooled_q, mode);
    let (cy1, mem1, ops1) = fc_engine(cfg, &squeeze_pw, group, &sc1, reduced, channels)?;
    let sc2 = window::serial_counts(&fc1_out, mode);
    let (cy2, mem2, ops2) = fc_engine(cfg, &excite_pw, group, &sc2, channels, reduced)?;

    let map_elems = (channels * h * w) as u64;
    // Pooling adds + rescale multiplies over the feature map; the map is
    // streamed from/to the GB (it is the layer's input trace).
    let mut mem = mem1;
    mem.accumulate(&mem2);
    mem.dram_input_bytes = input_dram_bytes(cfg, map_elems, 1);
    mem.input_gb_write_bytes = mem.dram_input_bytes;
    mem.input_gb_read_bytes += map_elems * 2; // pool read + rescale read
    mem.dram_output_bytes = map_elems;
    mem.output_gb_write_bytes = map_elems;
    let mut ops = ops1;
    ops.accumulate(&ops2);
    ops.accumulator_adds += map_elems;
    ops.macs += map_elems;
    // Rescale runs on the MAC array at one multiply per element.
    let rescale_cycles = map_elems.div_ceil(cfg.total_lanes() as u64);
    let pool_cycles = map_elems.div_ceil(cfg.total_lanes() as u64);
    let compute = cy1 + cy2 + rescale_cycles + pool_cycles;
    Ok(finish(cfg, desc.name(), compute, mem, ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_core::{layer as se_layer, SeConfig, VectorSparsity};
    use se_ir::{LayerDesc, QuantTensor};
    use se_tensor::rng;

    fn conv_desc(c: usize, m: usize, k: usize, stride: usize, pad: usize, hw: usize) -> LayerDesc {
        LayerDesc::new(
            "conv",
            LayerKind::Conv2d { in_channels: c, out_channels: m, kernel: k, stride, padding: pad },
            (hw, hw),
        )
    }

    fn quant_act(c: usize, hw: usize, seed: u64, sparsity: f32) -> QuantTensor {
        let mut r = rng::seeded(seed);
        let t = rng::normal_tensor(&mut r, &[c, hw, hw], 1.0).map(|v| {
            if v.abs() < sparsity {
                0.0
            } else {
                v.abs()
            }
        });
        QuantTensor::quantize(&t, 8).unwrap()
    }

    fn se_trace(c: usize, m: usize, hw: usize, keep: f32, seed: u64) -> LayerTrace {
        let desc = conv_desc(c, m, 3, 1, 1, hw);
        let mut r = rng::seeded(seed);
        let w = rng::kaiming_tensor(&mut r, &[m, c, 3, 3], c * 9);
        let cfg = SeConfig::default()
            .with_max_iterations(4)
            .unwrap()
            .with_vector_sparsity(VectorSparsity::KeepFraction(keep))
            .unwrap();
        let parts = se_layer::compress_layer(&desc, &w, &cfg).unwrap();
        LayerTrace::new(desc, WeightData::Se(parts), quant_act(c, hw, seed + 1, 0.4)).unwrap()
    }

    fn dense_trace(c: usize, m: usize, hw: usize, seed: u64) -> LayerTrace {
        let desc = conv_desc(c, m, 3, 1, 1, hw);
        let mut r = rng::seeded(seed);
        let w = rng::kaiming_tensor(&mut r, &[m, c, 3, 3], c * 9);
        let qw = QuantTensor::quantize(&w, 8).unwrap();
        LayerTrace::new(desc, WeightData::Dense(qw), quant_act(c, hw, seed + 1, 0.4)).unwrap()
    }

    fn accel() -> SeAccelerator {
        SeAccelerator::new(SeAcceleratorConfig::default()).unwrap()
    }

    #[test]
    fn conv_layer_produces_sane_counts() {
        let t = se_trace(4, 8, 8, 1.0, 1);
        let r = accel().process_layer(&t).unwrap();
        assert!(r.compute_cycles > 0);
        assert!(r.total_cycles >= r.compute_cycles);
        assert!(r.mem.dram_weight_bytes > 0);
        assert!(r.ops.rebuild_shift_adds > 0);
        assert!(r.ops.pe_lane_cycles > 0);
    }

    #[test]
    fn sparser_weights_run_faster_and_fetch_less() {
        let dense = accel().process_layer(&se_trace(8, 16, 16, 1.0, 2)).unwrap();
        let sparse = accel().process_layer(&se_trace(8, 16, 16, 0.3, 2)).unwrap();
        assert!(
            sparse.compute_cycles < dense.compute_cycles,
            "{} !< {}",
            sparse.compute_cycles,
            dense.compute_cycles
        );
        assert!(sparse.mem.dram_weight_bytes < dense.mem.dram_weight_bytes);
    }

    #[test]
    fn index_select_reduces_cycles() {
        let t = se_trace(8, 16, 16, 0.3, 3);
        let with = accel().process_layer(&t).unwrap();
        let cfg = SeAcceleratorConfig { index_select: false, ..Default::default() };
        let without = SeAccelerator::new(cfg).unwrap().process_layer(&t).unwrap();
        assert!(with.compute_cycles < without.compute_cycles);
        assert!(with.mem.dram_input_bytes <= without.mem.dram_input_bytes);
    }

    #[test]
    fn bit_serial_exploits_bit_sparsity() {
        let t = se_trace(8, 16, 16, 1.0, 4);
        let serial = accel().process_layer(&t).unwrap();
        let cfg = SeAcceleratorConfig { bit_serial: false, ..Default::default() };
        let parallel = SeAccelerator::new(cfg).unwrap().process_layer(&t).unwrap();
        // Booth digits of small activations are < 4, so bit-serial beats
        // one-cycle-per-multiply only when counting equivalent lanes; what
        // must hold unconditionally: the serial PE does fewer lane-cycles
        // than 8 per multiply.
        assert!(serial.ops.pe_lane_cycles > 0);
        assert_eq!(parallel.ops.pe_lane_cycles, 0);
        assert!(parallel.ops.macs > 0);
    }

    #[test]
    fn dense_weight_path_works() {
        let t = dense_trace(4, 8, 8, 5);
        let r = accel().process_layer(&t).unwrap();
        assert_eq!(r.ops.rebuild_shift_adds, 0);
        assert_eq!(r.mem.dram_index_bytes, 0);
        assert_eq!(r.mem.dram_weight_bytes, 8 * 4 * 9);
    }

    #[test]
    fn se_weights_shrink_dram_weight_traffic() {
        let se = accel().process_layer(&se_trace(8, 16, 16, 0.5, 6)).unwrap();
        let dn = accel().process_layer(&dense_trace(8, 16, 16, 6)).unwrap();
        assert!(
            se.mem.dram_weight_bytes < dn.mem.dram_weight_bytes,
            "{} !< {}",
            se.mem.dram_weight_bytes,
            dn.mem.dram_weight_bytes
        );
    }

    #[test]
    fn pointwise_layer_runs() {
        let desc = LayerDesc::new(
            "pw",
            LayerKind::Conv2d { in_channels: 9, out_channels: 8, kernel: 1, stride: 1, padding: 0 },
            (8, 8),
        );
        let mut r = rng::seeded(7);
        let w = rng::kaiming_tensor(&mut r, &[8, 9, 1, 1], 9);
        let cfg = SeConfig::default().with_max_iterations(4).unwrap();
        let parts = se_layer::compress_layer(&desc, &w, &cfg).unwrap();
        let t = LayerTrace::new(desc, WeightData::Se(parts), quant_act(9, 8, 8, 0.3)).unwrap();
        let res = accel().process_layer(&t).unwrap();
        assert!(res.compute_cycles > 0);
        assert!(res.ops.rebuild_shift_adds > 0);
    }

    #[test]
    fn depthwise_dedicated_design_is_faster() {
        let desc = LayerDesc::new(
            "dw",
            LayerKind::DepthwiseConv2d { channels: 16, kernel: 3, stride: 1, padding: 1 },
            (16, 16),
        );
        let mut r = rng::seeded(9);
        let w = rng::kaiming_tensor(&mut r, &[16, 3, 3], 9);
        let cfg = SeConfig::default().with_max_iterations(4).unwrap();
        let parts = se_layer::compress_layer(&desc, &w, &cfg).unwrap();
        let t = LayerTrace::new(desc, WeightData::Se(parts), quant_act(16, 16, 10, 0.3)).unwrap();
        let ded = accel().process_layer(&t).unwrap();
        let cfg2 = SeAcceleratorConfig { compact_dedicated: false, ..Default::default() };
        let plain = SeAccelerator::new(cfg2).unwrap().process_layer(&t).unwrap();
        assert!(
            ded.compute_cycles < plain.compute_cycles,
            "{} !< {}",
            ded.compute_cycles,
            plain.compute_cycles
        );
        // Idle-lane coupling: the slower mapping also burns more energy.
        let em = crate::EnergyModel::default();
        let c = SeAcceleratorConfig::default();
        assert!(ded.energy(&em, &c).total() < plain.energy(&em, &c).total());
    }

    #[test]
    fn fc_layer_runs_and_uses_cluster_mode() {
        let desc =
            LayerDesc::new("fc", LayerKind::Linear { in_features: 96, out_features: 32 }, (1, 1));
        let mut r = rng::seeded(11);
        let w = rng::kaiming_tensor(&mut r, &[32, 96], 96);
        let cfg = SeConfig::default().with_max_iterations(4).unwrap();
        let parts = se_layer::compress_layer(&desc, &w, &cfg).unwrap();
        let act = {
            let t = rng::normal_tensor(&mut rng::seeded(12), &[96], 1.0).map(f32::abs);
            QuantTensor::quantize(&t, 8).unwrap()
        };
        let t = LayerTrace::new(desc, WeightData::Se(parts), act).unwrap();
        let res = accel().process_layer(&t).unwrap();
        assert!(res.compute_cycles > 0);
        assert!(res.mem.dram_weight_bytes > 0);
    }

    #[test]
    fn squeeze_excite_layer_runs() {
        let desc =
            LayerDesc::new("se", LayerKind::SqueezeExcite { channels: 16, reduced: 4 }, (8, 8));
        let mut r = rng::seeded(13);
        let w = rng::kaiming_tensor(&mut r, &[2, 16, 4], 16);
        let cfg = SeConfig::default().with_max_iterations(4).unwrap();
        let parts = se_layer::compress_layer(&desc, &w, &cfg).unwrap();
        let t = LayerTrace::new(desc, WeightData::Se(parts), quant_act(16, 8, 14, 0.3)).unwrap();
        let res = accel().process_layer(&t).unwrap();
        assert!(res.compute_cycles > 0);
        assert!(res.ops.macs >= (16 * 8 * 8) as u64); // rescale multiplies
    }

    #[test]
    fn strided_and_padded_conv_runs() {
        let desc = conv_desc(3, 8, 3, 2, 1, 9);
        let mut r = rng::seeded(15);
        let w = rng::kaiming_tensor(&mut r, &[8, 3, 3, 3], 27);
        let cfg = SeConfig::default().with_max_iterations(3).unwrap();
        let parts = se_layer::compress_layer(&desc, &w, &cfg).unwrap();
        let t = LayerTrace::new(desc, WeightData::Se(parts), quant_act(3, 9, 16, 0.2)).unwrap();
        let res = accel().process_layer(&t).unwrap();
        assert!(res.compute_cycles > 0);
    }

    #[test]
    fn results_are_deterministic() {
        let t = se_trace(4, 8, 8, 0.5, 17);
        let a = accel().process_layer(&t).unwrap();
        let b = accel().process_layer(&t).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_geometries_share_one_schedule() {
        // Two layers with the same shape but different data, one distinct
        // shape: the cache holds two schedules, and every warm (cache-hit)
        // result is bit-identical to a cold single-layer run.
        let traces =
            [se_trace(4, 8, 8, 0.5, 21), se_trace(4, 8, 8, 0.7, 22), se_trace(8, 16, 16, 0.5, 23)];
        let shared = accel();
        let warm: Vec<_> = traces.iter().map(|t| shared.process_layer(t).unwrap()).collect();
        assert_eq!(shared.cached_schedules(), 2, "repeated shapes must reuse the schedule");
        for (t, w) in traces.iter().zip(&warm) {
            assert_eq!(&accel().process_layer(t).unwrap(), w, "cache hit differs from cold build");
        }
        // Clones share the per-run cache.
        let clone = shared.clone();
        clone.process_layer(&traces[0]).unwrap();
        assert_eq!(clone.cached_schedules(), 2);
    }

    #[test]
    fn shared_schedule_registry_is_bit_identical_and_shares_across_instances() {
        // A distinctive configuration so no other test's registry entry
        // interferes with the sharing assertion below.
        let cfg = SeAcceleratorConfig { row_sample: 3, ..Default::default() };
        let traces = [se_trace(4, 8, 8, 0.5, 31), se_trace(8, 16, 16, 0.5, 32)];
        let private = SeAccelerator::new(cfg.clone()).unwrap();
        let shared_a = SeAccelerator::with_shared_schedules(cfg.clone()).unwrap();
        for t in &traces {
            assert_eq!(
                shared_a.process_layer(t).unwrap(),
                private.process_layer(t).unwrap(),
                "registry-backed results must match private-cache results"
            );
        }
        // A separately constructed instance with the same configuration
        // sees the schedules the first one built.
        let shared_b = SeAccelerator::with_shared_schedules(cfg).unwrap();
        assert_eq!(shared_b.cached_schedules(), shared_a.cached_schedules());
        assert!(shared_b.cached_schedules() >= 2);
        for t in &traces {
            assert_eq!(shared_b.process_layer(t).unwrap(), private.process_layer(t).unwrap());
        }
        // A different configuration never shares an entry.
        let other = SeAccelerator::with_shared_schedules(SeAcceleratorConfig {
            row_sample: 5,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(other.cached_schedules(), 0);
    }

    #[test]
    fn batched_layer_amortizes_weight_side_and_rebuild() {
        let t = se_trace(8, 16, 16, 0.5, 19);
        let a = accel();
        let one = a.process_layer(&t).unwrap();
        assert_eq!(a.process_batch(&t, 1).unwrap(), one, "batch=1 is bit-identical");
        let four = a.process_batch(&t, 4).unwrap();
        // Weight fetch, basis, and rebuild once per batch.
        assert_eq!(four.mem.dram_weight_bytes, one.mem.dram_weight_bytes);
        assert_eq!(four.mem.dram_index_bytes, one.mem.dram_index_bytes);
        assert_eq!(four.mem.weight_gb_write_bytes, one.mem.weight_gb_write_bytes);
        assert_eq!(four.mem.rf_bytes, one.mem.rf_bytes);
        assert_eq!(four.ops.rebuild_shift_adds, one.ops.rebuild_shift_adds);
        // Activation traffic and compute per image.
        assert_eq!(four.mem.dram_input_bytes, 4 * one.mem.dram_input_bytes);
        assert_eq!(four.mem.dram_output_bytes, 4 * one.mem.dram_output_bytes);
        assert_eq!(four.compute_cycles, 4 * one.compute_cycles);
        // Per-image DRAM traffic strictly drops toward the activation floor.
        assert!(four.mem.dram_total_bytes() < 4 * one.mem.dram_total_bytes());
    }

    #[test]
    fn dram_bound_layers_report_dram_cycles() {
        // Starve the accelerator of DRAM bandwidth.
        let cfg = SeAcceleratorConfig { dram_bytes_per_cycle: 0.001, ..Default::default() };
        let accel = SeAccelerator::new(cfg).unwrap();
        let t = se_trace(4, 8, 8, 1.0, 18);
        let r = accel.process_layer(&t).unwrap();
        assert!(r.dram_cycles > r.compute_cycles);
        assert_eq!(r.total_cycles, r.dram_cycles);
    }
}
