//! Access/operation counters and per-layer / per-run results.

use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::SeAcceleratorConfig;

/// Byte-granular memory access counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemCounters {
    /// DRAM bytes read for input activations.
    pub dram_input_bytes: u64,
    /// DRAM bytes written for output activations.
    pub dram_output_bytes: u64,
    /// DRAM bytes read for weights (compressed bytes for SE).
    pub dram_weight_bytes: u64,
    /// DRAM bytes read for sparsity indices.
    pub dram_index_bytes: u64,
    /// Input GB bytes read.
    pub input_gb_read_bytes: u64,
    /// Input GB bytes written.
    pub input_gb_write_bytes: u64,
    /// Output GB bytes read.
    pub output_gb_read_bytes: u64,
    /// Output GB bytes written.
    pub output_gb_write_bytes: u64,
    /// Weight-buffer bytes read.
    pub weight_gb_read_bytes: u64,
    /// Weight-buffer bytes written.
    pub weight_gb_write_bytes: u64,
    /// Register-file bytes accessed (basis RF, FIFO, pipeline registers).
    pub rf_bytes: u64,
}

impl MemCounters {
    /// Total DRAM traffic in bytes (the quantity normalised in Fig. 11).
    pub fn dram_total_bytes(&self) -> u64 {
        self.dram_input_bytes
            + self.dram_output_bytes
            + self.dram_weight_bytes
            + self.dram_index_bytes
    }

    /// Accumulates another counter set into this one.
    pub fn accumulate(&mut self, o: &MemCounters) {
        self.dram_input_bytes += o.dram_input_bytes;
        self.dram_output_bytes += o.dram_output_bytes;
        self.dram_weight_bytes += o.dram_weight_bytes;
        self.dram_index_bytes += o.dram_index_bytes;
        self.input_gb_read_bytes += o.input_gb_read_bytes;
        self.input_gb_write_bytes += o.input_gb_write_bytes;
        self.output_gb_read_bytes += o.output_gb_read_bytes;
        self.output_gb_write_bytes += o.output_gb_write_bytes;
        self.weight_gb_read_bytes += o.weight_gb_read_bytes;
        self.weight_gb_write_bytes += o.weight_gb_write_bytes;
        self.rf_bytes += o.rf_bytes;
    }

    /// The weight-side DRAM bytes of these counters (compressed weights or
    /// dense synapses plus sparsity indices) — the footprint a model switch
    /// must re-fetch and a weight buffer must hold to keep the layer
    /// resident (see [`crate::residency`]).
    pub fn weight_fetch_bytes(&self) -> u64 {
        self.dram_weight_bytes + self.dram_index_bytes
    }

    /// These counters with the layer's weights already resident on chip:
    /// the weight and index DRAM fetches and the weight-buffer fill are
    /// dropped (they were paid when the model was loaded — see
    /// [`crate::residency`]), while every recurring term — activation
    /// traffic, weight-buffer *reads* feeding the PEs, and the rebuild
    /// register-file traffic that reconstructs rows from the resident
    /// compressed form — is kept unchanged.
    pub fn with_weights_resident(&self) -> MemCounters {
        MemCounters { dram_weight_bytes: 0, dram_index_bytes: 0, weight_gb_write_bytes: 0, ..*self }
    }

    /// Memory traffic for processing `batch` images of this layer
    /// back-to-back with the weights held resident across the batch.
    ///
    /// Weight-side traffic is charged **once per batch**: the compressed
    /// weight and index DRAM fetches, the weight-buffer fill, and the
    /// rebuild-engine register-file traffic (basis reads + rebuilt-row
    /// registration) — this is the amortization the paper's batch-size-1
    /// protocol leaves on the table. Activation-side traffic — input/output
    /// DRAM, global-buffer movement, and the per-pass weight-buffer
    /// *reads* that feed the PE array — scales with the batch size.
    ///
    /// `batch = 1` returns the counters unchanged.
    pub fn amortized_over_batch(&self, batch: u64) -> MemCounters {
        let n = batch.max(1);
        MemCounters {
            dram_input_bytes: self.dram_input_bytes * n,
            dram_output_bytes: self.dram_output_bytes * n,
            dram_weight_bytes: self.dram_weight_bytes,
            dram_index_bytes: self.dram_index_bytes,
            input_gb_read_bytes: self.input_gb_read_bytes * n,
            input_gb_write_bytes: self.input_gb_write_bytes * n,
            output_gb_read_bytes: self.output_gb_read_bytes * n,
            output_gb_write_bytes: self.output_gb_write_bytes * n,
            weight_gb_read_bytes: self.weight_gb_read_bytes * n,
            weight_gb_write_bytes: self.weight_gb_write_bytes,
            rf_bytes: self.rf_bytes,
        }
    }
}

/// Arithmetic operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounters {
    /// Bit-serial digit-cycles executed across all lanes (PE energy when
    /// bit-serial), or full multiplies when not.
    pub pe_lane_cycles: u64,
    /// Products accumulated (adder-tree / accumulator adds).
    pub accumulator_adds: u64,
    /// Shift-and-add operations in the rebuild engines.
    pub rebuild_shift_adds: u64,
    /// Index-selector comparisons.
    pub index_compares: u64,
    /// Full 8-bit MAC operations (used by non-bit-serial datapaths).
    pub macs: u64,
    /// Lane-cycles spent idle (allocated but not switching); couples
    /// latency to energy via [`EnergyModel::lane_idle_pj`].
    pub idle_lane_cycles: u64,
}

impl OpCounters {
    /// Accumulates another counter set into this one.
    pub fn accumulate(&mut self, o: &OpCounters) {
        self.pe_lane_cycles += o.pe_lane_cycles;
        self.accumulator_adds += o.accumulator_adds;
        self.rebuild_shift_adds += o.rebuild_shift_adds;
        self.index_compares += o.index_compares;
        self.macs += o.macs;
        self.idle_lane_cycles += o.idle_lane_cycles;
    }

    /// Operation counts for processing `batch` images back-to-back with
    /// the weights held resident: the rebuild engine runs **once per
    /// batch** (rebuilt coefficient rows stay registered across images of
    /// the same layer), while the data-path work — multiplications,
    /// accumulations, index-selector compares, idle lane-cycles — scales
    /// with the batch size. `batch = 1` returns the counters unchanged.
    pub fn amortized_over_batch(&self, batch: u64) -> OpCounters {
        let n = batch.max(1);
        OpCounters {
            pe_lane_cycles: self.pe_lane_cycles * n,
            accumulator_adds: self.accumulator_adds * n,
            rebuild_shift_adds: self.rebuild_shift_adds,
            index_compares: self.index_compares * n,
            macs: self.macs * n,
            idle_lane_cycles: self.idle_lane_cycles * n,
        }
    }
}

/// One layer's simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerResult {
    /// Layer name (from the trace descriptor).
    pub name: String,
    /// Compute cycles (PE array busy time).
    pub compute_cycles: u64,
    /// DRAM transfer cycles at the configured bandwidth.
    pub dram_cycles: u64,
    /// Layer latency in cycles: compute and DRAM overlap via double
    /// buffering, so the layer takes the maximum of the two.
    pub total_cycles: u64,
    /// Memory access counters.
    pub mem: MemCounters,
    /// Operation counters.
    pub ops: OpCounters,
}

impl LayerResult {
    /// The result of processing `batch` images of this layer back-to-back
    /// with the weights held resident: weight-side DRAM traffic and the
    /// rebuild work are charged once per batch (see
    /// [`MemCounters::amortized_over_batch`] /
    /// [`OpCounters::amortized_over_batch`]), compute scales with the batch
    /// size, and the DRAM transfer time is re-derived from the amortized
    /// traffic at `dram_bytes_per_cycle` (the accelerator's configured
    /// bandwidth — see `Accelerator::dram_bytes_per_cycle`). Compute and
    /// DRAM still overlap through double buffering, now across the whole
    /// batch, so the batched layer takes the maximum of the two.
    ///
    /// `batch = 1` reproduces `self` exactly, bit for bit.
    pub fn amortized_over_batch(&self, batch: u64, dram_bytes_per_cycle: f64) -> LayerResult {
        let n = batch.max(1);
        let mem = self.mem.amortized_over_batch(n);
        let ops = self.ops.amortized_over_batch(n);
        let compute_cycles = self.compute_cycles * n;
        let dram_cycles = (mem.dram_total_bytes() as f64 / dram_bytes_per_cycle).ceil() as u64;
        LayerResult {
            name: self.name.clone(),
            compute_cycles,
            dram_cycles,
            total_cycles: compute_cycles.max(dram_cycles),
            mem,
            ops,
        }
    }

    /// This (possibly batched) layer result with its weights already
    /// resident on chip: weight-side DRAM traffic and the buffer fill are
    /// dropped ([`MemCounters::with_weights_resident`]) and the DRAM
    /// transfer time is re-derived from the remaining traffic, so a
    /// resident batch's latency is `max(compute, activation DRAM)`. The
    /// rebuild work stays charged — on SmartExchange it reruns each batch
    /// from the resident compressed form. Used with
    /// [`crate::residency::WeightBuffer`], which decides when a model is
    /// resident and what a switch costs.
    pub fn with_weights_resident(&self, dram_bytes_per_cycle: f64) -> LayerResult {
        let mem = self.mem.with_weights_resident();
        let dram_cycles = (mem.dram_total_bytes() as f64 / dram_bytes_per_cycle).ceil() as u64;
        LayerResult {
            name: self.name.clone(),
            compute_cycles: self.compute_cycles,
            dram_cycles,
            total_cycles: self.compute_cycles.max(dram_cycles),
            mem,
            ops: self.ops,
        }
    }

    /// Converts counters into the per-component energy breakdown.
    pub fn energy(&self, model: &EnergyModel, cfg: &SeAcceleratorConfig) -> EnergyBreakdown {
        let input_sram = model.sram_pj_per_byte(cfg.input_gb_bank_kb);
        let output_sram = model.sram_pj_per_byte(cfg.output_gb_bank_kb);
        let weight_sram = model.sram_pj_per_byte(cfg.weight_buf_bank_kb);
        EnergyBreakdown {
            dram_input: self.mem.dram_input_bytes as f64 * model.dram_pj_per_byte,
            dram_output: self.mem.dram_output_bytes as f64 * model.dram_pj_per_byte,
            dram_weight: self.mem.dram_weight_bytes as f64 * model.dram_pj_per_byte,
            dram_index: self.mem.dram_index_bytes as f64 * model.dram_pj_per_byte,
            input_gb_read: self.mem.input_gb_read_bytes as f64 * input_sram,
            input_gb_write: self.mem.input_gb_write_bytes as f64 * input_sram,
            output_gb_read: self.mem.output_gb_read_bytes as f64 * output_sram,
            output_gb_write: self.mem.output_gb_write_bytes as f64 * output_sram,
            weight_gb_read: self.mem.weight_gb_read_bytes as f64 * weight_sram,
            weight_gb_write: self.mem.weight_gb_write_bytes as f64 * weight_sram,
            pe: self.ops.pe_lane_cycles as f64 * model.bit_serial_cycle_pj
                + self.ops.macs as f64 * model.mac_pj
                + self.ops.idle_lane_cycles as f64 * model.lane_idle_pj,
            accumulator: self.ops.accumulator_adds as f64 * model.add_pj,
            re: self.ops.rebuild_shift_adds as f64 * model.shift_add_pj
                + self.mem.rf_bytes as f64 * model.rf_pj_per_byte,
            index_selector: self.ops.index_compares as f64 * model.index_compare_pj,
        }
    }
}

/// A whole-network simulation outcome.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunResult {
    /// Per-layer results in processing order.
    pub layers: Vec<LayerResult>,
}

impl RunResult {
    /// Total latency in cycles.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.total_cycles).sum()
    }

    /// Total latency in milliseconds at the configured frequency.
    pub fn latency_ms(&self, cfg: &SeAcceleratorConfig) -> f64 {
        self.total_cycles() as f64 / cfg.frequency_hz * 1e3
    }

    /// Aggregated memory counters.
    pub fn mem_totals(&self) -> MemCounters {
        let mut m = MemCounters::default();
        for l in &self.layers {
            m.accumulate(&l.mem);
        }
        m
    }

    /// Aggregated energy breakdown.
    pub fn energy(&self, model: &EnergyModel, cfg: &SeAcceleratorConfig) -> EnergyBreakdown {
        let mut e = EnergyBreakdown::default();
        for l in &self.layers {
            e.accumulate(&l.energy(model, cfg));
        }
        e
    }

    /// Total energy in millijoules.
    pub fn energy_mj(&self, model: &EnergyModel, cfg: &SeAcceleratorConfig) -> f64 {
        self.energy(model, cfg).total() * 1e-12 * 1e3
    }

    /// The run's whole-model weight footprint in bytes: the weight + index
    /// DRAM traffic of one image, which every design fetches exactly once
    /// per image — so it is also what a model switch re-fetches and what a
    /// weight buffer must hold to keep the model resident (see
    /// [`crate::residency`]).
    pub fn weight_footprint_bytes(&self) -> u64 {
        self.mem_totals().weight_fetch_bytes()
    }

    /// The whole run with every layer's weights already resident —
    /// [`LayerResult::with_weights_resident`] applied per layer. Combined
    /// with [`RunResult::amortized_over_batch`] this yields the execution
    /// model of a batch on a model that stayed resident across batches.
    pub fn with_weights_resident(&self, dram_bytes_per_cycle: f64) -> RunResult {
        RunResult {
            layers: self
                .layers
                .iter()
                .map(|l| l.with_weights_resident(dram_bytes_per_cycle))
                .collect(),
        }
    }

    /// The whole network processed as `batch` images back-to-back,
    /// layer by layer: each layer's weights are fetched (and its rebuild
    /// run) once per batch while per-image compute and activation traffic
    /// scale — [`LayerResult::amortized_over_batch`] applied to every
    /// layer. `batch = 1` reproduces `self` exactly.
    pub fn amortized_over_batch(&self, batch: u64, dram_bytes_per_cycle: f64) -> RunResult {
        RunResult {
            layers: self
                .layers
                .iter()
                .map(|l| l.amortized_over_batch(batch, dram_bytes_per_cycle))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(cycles: u64, dram_in: u64) -> LayerResult {
        LayerResult {
            name: "l".into(),
            compute_cycles: cycles,
            dram_cycles: 0,
            total_cycles: cycles,
            mem: MemCounters { dram_input_bytes: dram_in, ..Default::default() },
            ops: OpCounters { pe_lane_cycles: 10, ..Default::default() },
        }
    }

    #[test]
    fn run_totals_sum_layers() {
        let run = RunResult { layers: vec![layer(100, 5), layer(200, 7)] };
        assert_eq!(run.total_cycles(), 300);
        assert_eq!(run.mem_totals().dram_input_bytes, 12);
        let cfg = SeAcceleratorConfig::default();
        assert!((run.latency_ms(&cfg) - 300.0 / 1e9 * 1e3).abs() < 1e-15);
    }

    #[test]
    fn energy_uses_unit_costs() {
        let model = EnergyModel::default();
        let cfg = SeAcceleratorConfig::default();
        let l = layer(1, 10);
        let e = l.energy(&model, &cfg);
        assert!((e.dram_input - 1000.0).abs() < 1e-9); // 10 B x 100 pJ
        assert!((e.pe - 10.0 * 0.030).abs() < 1e-9);
        assert_eq!(e.dram_weight, 0.0);
    }

    #[test]
    fn batch_amortization_charges_weights_once() {
        let l = LayerResult {
            name: "l".into(),
            compute_cycles: 10,
            dram_cycles: 2,
            total_cycles: 10,
            mem: MemCounters {
                dram_input_bytes: 30,
                dram_output_bytes: 20,
                dram_weight_bytes: 50,
                dram_index_bytes: 7,
                input_gb_read_bytes: 4,
                input_gb_write_bytes: 30,
                output_gb_read_bytes: 1,
                output_gb_write_bytes: 20,
                weight_gb_read_bytes: 9,
                weight_gb_write_bytes: 57,
                rf_bytes: 11,
            },
            ops: OpCounters {
                pe_lane_cycles: 5,
                accumulator_adds: 6,
                rebuild_shift_adds: 8,
                index_compares: 3,
                macs: 0,
                idle_lane_cycles: 2,
            },
        };
        let b = l.amortized_over_batch(4, 64.0);
        // Activation-side scales with the batch...
        assert_eq!(b.mem.dram_input_bytes, 120);
        assert_eq!(b.mem.dram_output_bytes, 80);
        assert_eq!(b.mem.input_gb_read_bytes, 16);
        assert_eq!(b.mem.weight_gb_read_bytes, 36);
        assert_eq!(b.ops.pe_lane_cycles, 20);
        assert_eq!(b.ops.index_compares, 12);
        assert_eq!(b.compute_cycles, 40);
        // ...weight-side and rebuild are charged once per batch.
        assert_eq!(b.mem.dram_weight_bytes, 50);
        assert_eq!(b.mem.dram_index_bytes, 7);
        assert_eq!(b.mem.weight_gb_write_bytes, 57);
        assert_eq!(b.mem.rf_bytes, 11);
        assert_eq!(b.ops.rebuild_shift_adds, 8);
        // DRAM time re-derived from the amortized traffic.
        assert_eq!(b.dram_cycles, (b.mem.dram_total_bytes() as f64 / 64.0).ceil() as u64);
        assert_eq!(b.total_cycles, b.compute_cycles.max(b.dram_cycles));
    }

    #[test]
    fn batch_of_one_is_the_identity() {
        let cfg = SeAcceleratorConfig::default();
        let l = layer(100, 640);
        let mut expect = l.clone();
        // `layer()` fabricates dram_cycles = 0; the amortized result
        // re-derives it from the counters, as every accelerator does.
        expect.dram_cycles =
            (expect.mem.dram_total_bytes() as f64 / cfg.dram_bytes_per_cycle).ceil() as u64;
        assert_eq!(l.amortized_over_batch(1, cfg.dram_bytes_per_cycle), expect);
        assert_eq!(l.amortized_over_batch(0, cfg.dram_bytes_per_cycle), expect, "0 clamps to 1");
        let run = RunResult { layers: vec![layer(1, 2), layer(3, 4)] };
        let amortized = run.amortized_over_batch(1, cfg.dram_bytes_per_cycle);
        assert_eq!(amortized.layers.len(), 2);
        assert_eq!(amortized.layers[0].compute_cycles, 1);
    }

    #[test]
    fn resident_weights_drop_only_the_weight_side() {
        let l = LayerResult {
            name: "l".into(),
            compute_cycles: 10,
            dram_cycles: 2,
            total_cycles: 10,
            mem: MemCounters {
                dram_input_bytes: 30,
                dram_output_bytes: 20,
                dram_weight_bytes: 500,
                dram_index_bytes: 7,
                input_gb_read_bytes: 4,
                input_gb_write_bytes: 30,
                output_gb_read_bytes: 1,
                output_gb_write_bytes: 20,
                weight_gb_read_bytes: 9,
                weight_gb_write_bytes: 57,
                rf_bytes: 11,
            },
            ops: OpCounters { rebuild_shift_adds: 8, ..Default::default() },
        };
        assert_eq!(l.mem.weight_fetch_bytes(), 507);
        let r = l.with_weights_resident(1.0);
        assert_eq!(r.mem.dram_weight_bytes, 0);
        assert_eq!(r.mem.dram_index_bytes, 0);
        assert_eq!(r.mem.weight_gb_write_bytes, 0);
        // Recurring terms survive: activations, weight-buffer reads, and
        // the rebuild RF/shift-add work from the resident compressed form.
        assert_eq!(r.mem.dram_input_bytes, 30);
        assert_eq!(r.mem.weight_gb_read_bytes, 9);
        assert_eq!(r.mem.rf_bytes, 11);
        assert_eq!(r.ops.rebuild_shift_adds, 8);
        // DRAM time re-derived from the activation-only traffic.
        assert_eq!(r.dram_cycles, 50);
        assert_eq!(r.total_cycles, 50);

        let run = RunResult { layers: vec![l.clone(), l] };
        assert_eq!(run.weight_footprint_bytes(), 2 * 507);
        let resident = run.with_weights_resident(1.0);
        assert_eq!(resident.weight_footprint_bytes(), 0);
        assert_eq!(resident.layers.len(), 2);
        // Resident-batch composition: amortize, then drop the weight side.
        let batched = run.amortized_over_batch(4, 64.0).with_weights_resident(64.0);
        assert_eq!(batched.mem_totals().dram_input_bytes, 2 * 30 * 4);
        assert_eq!(batched.weight_footprint_bytes(), 0);
    }

    #[test]
    fn counters_accumulate() {
        let mut a = MemCounters::default();
        a.accumulate(&MemCounters { dram_weight_bytes: 3, rf_bytes: 2, ..Default::default() });
        a.accumulate(&MemCounters { dram_weight_bytes: 4, ..Default::default() });
        assert_eq!(a.dram_weight_bytes, 7);
        assert_eq!(a.dram_total_bytes(), 7);
        let mut o = OpCounters::default();
        o.accumulate(&OpCounters { macs: 5, ..Default::default() });
        assert_eq!(o.macs, 5);
    }
}
