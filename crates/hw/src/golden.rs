//! Brute-force reference model for validating [`crate::sim::SeAccelerator`].
//!
//! The paper validates its cycle-accurate simulator against RTL; this
//! module is the reproduction's analogue: an independently-written,
//! per-window event loop (no shared scratch tables, different loop
//! structure) that recomputes CONV compute-cycles, plus a functional check
//! that convolving with the rebuilt `Ce·B` weights matches a direct
//! convolution. The test suite enforces exact agreement on a grid of small
//! layers; the fast simulator is then trusted at full scale.

use crate::window::SerialMode;
use crate::{HwError, Result, SeAcceleratorConfig};
use se_ir::{LayerKind, LayerTrace, SeLayer, SeLayout, WeightData};
use se_tensor::{conv, Tensor};

/// Coefficient row values of one filter's reshaped matrix, straight from
/// the slice storage (independent of the simulator's mask preparation).
fn filter_ce_row(layer: &SeLayer, filter: usize, row: usize) -> Vec<f32> {
    let per_unit = match *layer.layout() {
        SeLayout::ConvPerFilter { slices_per_filter, .. } => slices_per_filter,
        SeLayout::FcPerRow { slices_per_row, .. } => slices_per_row,
    };
    let unit = &layer.slices()[filter * per_unit..(filter + 1) * per_unit];
    let mut remaining = row;
    for slice in unit {
        if remaining < slice.ce().rows() {
            return slice.ce().row(remaining).to_vec();
        }
        remaining -= slice.ce().rows();
    }
    Vec::new()
}

/// Compute-cycles of a standard CONV layer, re-derived by brute force.
///
/// # Errors
///
/// Returns [`HwError::UnsupportedTrace`] for non-CONV layers or dense
/// weights (the golden model targets the SE path).
pub fn golden_conv_cycles(cfg: &SeAcceleratorConfig, trace: &LayerTrace) -> Result<u64> {
    let desc = trace.desc();
    let LayerKind::Conv2d { in_channels: c, out_channels: m, kernel, stride, padding } =
        *desc.kind()
    else {
        return Err(HwError::UnsupportedTrace {
            reason: "golden model handles standard CONV only".into(),
        });
    };
    if kernel < 2 {
        return Err(HwError::UnsupportedTrace {
            reason: "golden model handles R = S > 1 CONV only".into(),
        });
    }
    let WeightData::Se(parts) = trace.weights() else {
        return Err(HwError::UnsupportedTrace { reason: "golden model expects SE weights".into() });
    };
    let layer = &parts[0];
    let (h, w) = desc.input_hw();
    let (e_out, f_out) = desc.output_hw()?;
    let q = trace.input();
    let mode = match (cfg.bit_serial, cfg.booth_encoder) {
        (true, true) => SerialMode::Booth,
        (true, false) => SerialMode::PlainBits,
        (false, _) => SerialMode::Unit,
    };

    let code_at = |ci: usize, iy: usize, ix: isize| -> i8 {
        if ix < 0 || ix as usize >= w {
            0
        } else {
            q.data()[(ci * h + iy) * w + ix as usize]
        }
    };
    let act_row_zero =
        |ci: usize, iy: usize| -> bool { (0..w).all(|x| q.data()[(ci * h + iy) * w + x] == 0) };

    // Row cost: the lockstep bit-serial cycles of one weight row over one
    // output-pixel group.
    let row_cost = |ci: usize, iy: usize, f0: usize, nf: usize| -> u64 {
        let mut cost = 0u64;
        for si in 0..kernel {
            let mut wmax = 0u8;
            for j in 0..nf {
                let ix = ((f0 + j) * stride + si) as isize - padding as isize;
                wmax = wmax.max(mode.cycles(code_at(ci, iy, ix)));
            }
            cost += u64::from(wmax.max(1));
        }
        cost
    };

    let fold = if m < cfg.dim_m { (cfg.dim_m / m.max(1)).clamp(1, 8) } else { 1 };
    let eff_f = cfg.dim_f * fold;
    let mut cycles = 0u64;
    for e in 0..e_out {
        if cfg.index_select {
            // Work pools over the output row's pixel groups and channels:
            // the selector dispatches (coefficient row, pixel group) pairs
            // from the layer-wide index to free lines, bounded below by the
            // longest single item.
            for m0 in (0..m).step_by(cfg.dim_m) {
                let mut tile = 0u64;
                for fi in m0..(m0 + cfg.dim_m).min(m) {
                    let mut work = 0u64;
                    let mut longest = 0u64;
                    for ci in 0..c {
                        for kr in 0..kernel {
                            let iy = (e * stride + kr) as isize - padding as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            let iy = iy as usize;
                            let ce_row = filter_ce_row(layer, fi, ci * kernel + kr);
                            if ce_row.iter().all(|&x| x == 0.0) || act_row_zero(ci, iy) {
                                continue;
                            }
                            for f0 in (0..f_out).step_by(eff_f) {
                                let nf = eff_f.min(f_out - f0);
                                let cost = row_cost(ci, iy, f0, nf);
                                work += cost;
                                longest = longest.max(cost);
                            }
                        }
                    }
                    let slice = work.div_ceil(cfg.dim_c as u64).max(longest);
                    tile = tile.max(slice);
                }
                cycles += tile;
            }
        } else {
            // Static line ownership: line time accumulates over the output
            // row; every filter tile pays the slowest line.
            let m_tiles = m.div_ceil(cfg.dim_m) as u64;
            for c0 in (0..c).step_by(cfg.dim_c) {
                let mut line_max = 0u64;
                for ci in c0..(c0 + cfg.dim_c).min(c) {
                    let mut line = 0u64;
                    for kr in 0..kernel {
                        let iy = (e * stride + kr) as isize - padding as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        let iy = iy as usize;
                        for f0 in (0..f_out).step_by(eff_f) {
                            let nf = eff_f.min(f_out - f0);
                            line += row_cost(ci, iy, f0, nf);
                        }
                    }
                    line_max = line_max.max(line);
                }
                cycles += line_max * m_tiles;
            }
        }
    }
    Ok(cycles)
}

/// Functional reference: convolution computed with the weights rebuilt from
/// the SE form — the result the accelerator's MAC array must produce.
///
/// # Errors
///
/// Returns [`HwError::UnsupportedTrace`] for non-CONV or dense traces.
pub fn golden_conv_outputs(trace: &LayerTrace) -> Result<Tensor> {
    let desc = trace.desc();
    let LayerKind::Conv2d { in_channels, out_channels, kernel, stride, padding } = *desc.kind()
    else {
        return Err(HwError::UnsupportedTrace {
            reason: "golden outputs handle standard CONV only".into(),
        });
    };
    let WeightData::Se(parts) = trace.weights() else {
        return Err(HwError::UnsupportedTrace { reason: "golden model expects SE weights".into() });
    };
    let weights = parts[0].reconstruct_weights()?;
    let geom = conv::Conv2dGeom {
        in_channels,
        out_channels,
        kernel_h: kernel,
        kernel_w: kernel,
        stride,
        padding,
    };
    Ok(conv::conv2d(&weights, &trace.input().dequantize(), &geom)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SeAccelerator;
    use crate::Accelerator;
    use se_core::{layer as se_layer, SeConfig, VectorSparsity};
    use se_ir::{LayerDesc, QuantTensor};
    use se_tensor::rng;

    #[allow(clippy::too_many_arguments)]
    fn make_trace(
        c: usize,
        m: usize,
        hw: usize,
        k: usize,
        stride: usize,
        pad: usize,
        keep: f32,
        seed: u64,
    ) -> LayerTrace {
        let desc = LayerDesc::new(
            "g",
            LayerKind::Conv2d { in_channels: c, out_channels: m, kernel: k, stride, padding: pad },
            (hw, hw),
        );
        let mut r = rng::seeded(seed);
        let w = rng::kaiming_tensor(&mut r, &[m, c, k, k], c * k * k);
        let cfg = SeConfig::default()
            .with_max_iterations(4)
            .unwrap()
            .with_vector_sparsity(VectorSparsity::KeepFraction(keep))
            .unwrap();
        let parts = se_layer::compress_layer(&desc, &w, &cfg).unwrap();
        let act =
            rng::normal_tensor(&mut r, &[c, hw, hw], 1.0).map(|v| if v < 0.3 { 0.0 } else { v });
        let q = QuantTensor::quantize(&act, 8).unwrap();
        LayerTrace::new(desc, WeightData::Se(parts), q).unwrap()
    }

    /// The fast simulator and the brute-force model must agree exactly.
    #[test]
    fn simulator_matches_golden_on_small_grid() {
        let configs: [(usize, usize, usize, usize, usize, usize, f32); 5] = [
            (2, 3, 6, 3, 1, 1, 1.0),
            (3, 4, 8, 3, 1, 1, 0.5),
            (2, 2, 9, 3, 2, 1, 0.6),
            (1, 5, 7, 3, 1, 0, 0.4),
            (4, 3, 10, 5, 2, 2, 0.7),
        ];
        for (i, &(c, m, hw, k, stride, pad, keep)) in configs.iter().enumerate() {
            let trace = make_trace(c, m, hw, k, stride, pad, keep, 100 + i as u64);
            let cfg = SeAcceleratorConfig { dim_m: 2, dim_c: 2, dim_f: 4, ..Default::default() };
            let sim = SeAccelerator::new(cfg.clone()).unwrap();
            let fast = sim.process_layer(&trace).unwrap().compute_cycles;
            let golden = golden_conv_cycles(&cfg, &trace).unwrap();
            assert_eq!(fast, golden, "config {i}: fast {fast} vs golden {golden}");
        }
    }

    #[test]
    fn simulator_matches_golden_with_default_array() {
        let trace = make_trace(4, 8, 12, 3, 1, 1, 0.5, 42);
        let cfg = SeAcceleratorConfig::default();
        let sim = SeAccelerator::new(cfg.clone()).unwrap();
        let fast = sim.process_layer(&trace).unwrap().compute_cycles;
        let golden = golden_conv_cycles(&cfg, &trace).unwrap();
        assert_eq!(fast, golden);
    }

    #[test]
    fn simulator_matches_golden_without_index_select() {
        let trace = make_trace(3, 4, 8, 3, 1, 1, 0.5, 77);
        let mut cfg = SeAcceleratorConfig { dim_m: 2, dim_c: 2, dim_f: 4, ..Default::default() };
        cfg.index_select = false;
        let sim = SeAccelerator::new(cfg.clone()).unwrap();
        assert_eq!(
            sim.process_layer(&trace).unwrap().compute_cycles,
            golden_conv_cycles(&cfg, &trace).unwrap()
        );
    }

    #[test]
    fn simulator_matches_golden_without_bit_serial() {
        let trace = make_trace(3, 4, 8, 3, 1, 1, 0.6, 78);
        let mut cfg = SeAcceleratorConfig { dim_m: 4, dim_c: 2, dim_f: 4, ..Default::default() };
        cfg.bit_serial = false;
        let sim = SeAccelerator::new(cfg.clone()).unwrap();
        assert_eq!(
            sim.process_layer(&trace).unwrap().compute_cycles,
            golden_conv_cycles(&cfg, &trace).unwrap()
        );
    }

    /// The rebuilt-weight convolution must match a dense convolution with
    /// the same rebuilt weights — i.e. the SE form computes the function it
    /// claims to.
    #[test]
    fn golden_outputs_match_direct_convolution() {
        let trace = make_trace(2, 3, 6, 3, 1, 1, 1.0, 55);
        let out = golden_conv_outputs(&trace).unwrap();
        assert_eq!(out.shape(), &[3, 6, 6]);
        // Recompute by hand through the public pieces.
        let WeightData::Se(parts) = trace.weights() else { unreachable!() };
        let w = parts[0].reconstruct_weights().unwrap();
        let geom = conv::Conv2dGeom {
            in_channels: 2,
            out_channels: 3,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
        };
        let direct = conv::conv2d(&w, &trace.input().dequantize(), &geom).unwrap();
        assert_eq!(out, direct);
    }

    #[test]
    fn golden_rejects_unsupported() {
        let desc =
            LayerDesc::new("fc", LayerKind::Linear { in_features: 4, out_features: 2 }, (1, 1));
        let q = QuantTensor::quantize(&Tensor::full(&[4], 1.0), 8).unwrap();
        let t = LayerTrace::new(
            desc,
            WeightData::Dense(QuantTensor::quantize(&Tensor::zeros(&[2, 4]), 8).unwrap()),
            q,
        )
        .unwrap();
        assert!(golden_conv_cycles(&SeAcceleratorConfig::default(), &t).is_err());
    }
}
