use std::fmt;

/// Errors produced by the hardware simulators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HwError {
    /// A configuration value was out of range.
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A trace was not processable by this accelerator (wrong weight form,
    /// unsupported layer kind, mismatched shapes).
    UnsupportedTrace {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An underlying interchange-format operation failed.
    Ir(se_ir::IrError),
    /// An underlying tensor operation failed.
    Tensor(se_tensor::TensorError),
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            HwError::UnsupportedTrace { reason } => write!(f, "unsupported trace: {reason}"),
            HwError::Ir(e) => write!(f, "format error: {e}"),
            HwError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for HwError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HwError::Ir(e) => Some(e),
            HwError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<se_ir::IrError> for HwError {
    fn from(e: se_ir::IrError) -> Self {
        HwError::Ir(e)
    }
}

impl From<se_tensor::TensorError> for HwError {
    fn from(e: se_tensor::TensorError) -> Self {
        HwError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(HwError::InvalidConfig { reason: "x".into() }.to_string().contains("x"));
        assert!(HwError::UnsupportedTrace { reason: "y".into() }.to_string().contains("y"));
    }
}
