//! Weight-buffer residency and model-switch cost accounting.
//!
//! Mixed-model serving turns the weight buffer into a cache of *models*:
//! while a model stays resident, batch after batch reuses its on-chip
//! weights and only the activation traffic recurs; switching to a
//! non-resident model re-fetches the full weight footprint — the dense
//! bytes on the baselines, the compressed basis + coefficient form (whose
//! rebuild then reruns per batch) on SmartExchange — and evicts whatever
//! no longer fits. SmartExchange's smaller footprint is therefore directly
//! visible at the serving layer as fewer evictions and refetches at equal
//! buffer size, which is the trade `se cluster` measures.
//!
//! [`WeightBuffer`] is the deterministic LRU residency model: models are
//! identified by caller-assigned indices, capacities and footprints are
//! byte counts, and every decision is a pure function of the admission
//! sequence — no clocks, no randomness — so cluster simulations built on
//! it stay bit-identical across worker counts.

/// Outcome of admitting one model's weights ahead of a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// The model was already resident: no DRAM weight traffic.
    Resident,
    /// The model was fetched into the buffer, evicting the listed models
    /// (LRU order) to make room.
    Fetched {
        /// Models evicted to make room, least-recently-used first.
        evicted: Vec<usize>,
    },
    /// The footprint exceeds the buffer outright: the weights are streamed
    /// from DRAM for this batch and nothing resident is disturbed. Every
    /// future batch of this model streams again.
    Streamed,
}

impl Admission {
    /// Whether this admission had to move the footprint over DRAM (a fetch
    /// or a stream — anything but a residency hit).
    pub fn fetched_from_dram(&self) -> bool {
        !matches!(self, Admission::Resident)
    }
}

/// Running residency counters of one [`WeightBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResidencyStats {
    /// Batches served with the model's weights already resident.
    pub hits: u64,
    /// Weight fetches from DRAM (switch fetches plus streamed batches).
    pub fetches: u64,
    /// Models evicted to make room for a fetch.
    pub evictions: u64,
    /// Total weight bytes moved over DRAM by those fetches.
    pub bytes_fetched: u64,
}

impl ResidencyStats {
    /// Accumulates another buffer's counters into this one (used to fold
    /// per-instance stats into a cluster total).
    pub fn accumulate(&mut self, o: &ResidencyStats) {
        self.hits += o.hits;
        self.fetches += o.fetches;
        self.evictions += o.evictions;
        self.bytes_fetched += o.bytes_fetched;
    }
}

/// A finite weight buffer holding whole-model weight footprints with LRU
/// replacement.
///
/// The buffer tracks which models' weights are currently on chip; a batch
/// admits its model before executing ([`WeightBuffer::admit`]). Capacity
/// and footprints are bytes; a zero-byte footprint is always resident-able.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightBuffer {
    capacity_bytes: u64,
    /// Resident models with their footprints, least-recently-used first.
    resident: Vec<(usize, u64)>,
    stats: ResidencyStats,
}

impl WeightBuffer {
    /// Creates an empty buffer of the given capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        WeightBuffer { capacity_bytes, resident: Vec::new(), stats: ResidencyStats::default() }
    }

    /// Buffer capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Whether `model` is currently resident.
    pub fn is_resident(&self, model: usize) -> bool {
        self.resident.iter().any(|&(m, _)| m == model)
    }

    /// Bytes currently occupied by resident models.
    pub fn occupied_bytes(&self) -> u64 {
        self.resident.iter().map(|&(_, b)| b).sum()
    }

    /// The residency counters accumulated so far.
    pub fn stats(&self) -> &ResidencyStats {
        &self.stats
    }

    /// Admits `model` (footprint `bytes`) ahead of a batch: a residency
    /// hit refreshes its LRU position for free; a miss fetches the
    /// footprint, evicting least-recently-used models until it fits; a
    /// footprint larger than the whole buffer is streamed — charged like a
    /// fetch but never made resident and never evicting anything.
    pub fn admit(&mut self, model: usize, bytes: u64) -> Admission {
        if let Some(pos) = self.resident.iter().position(|&(m, _)| m == model) {
            let entry = self.resident.remove(pos);
            self.resident.push(entry);
            self.stats.hits += 1;
            return Admission::Resident;
        }
        self.stats.fetches += 1;
        self.stats.bytes_fetched += bytes;
        if bytes > self.capacity_bytes {
            return Admission::Streamed;
        }
        let mut evicted = Vec::new();
        while self.occupied_bytes() + bytes > self.capacity_bytes {
            let (victim, _) = self.resident.remove(0);
            evicted.push(victim);
        }
        self.stats.evictions += evicted.len() as u64;
        self.resident.push((model, bytes));
        Admission::Fetched { evicted }
    }

    /// Drops all residency — the state of the buffer after its instance
    /// restarts — while keeping the lifetime counters, so the re-fetches
    /// a restart forces are charged to the same stats. Restart evictions
    /// are not counted as LRU evictions: nothing was displaced *by* a
    /// fetch, the contents simply did not survive the power cycle.
    pub fn cold_restart(&mut self) {
        self.resident.clear();
    }
}

/// DRAM cycles to move a `bytes`-sized weight footprint at the given
/// bandwidth — the latency a model switch serializes in front of its first
/// batch (the fetch cannot overlap compute that needs the weights).
pub fn fetch_cycles(bytes: u64, dram_bytes_per_cycle: f64) -> u64 {
    debug_assert!(dram_bytes_per_cycle > 0.0, "bandwidth must be positive");
    (bytes as f64 / dram_bytes_per_cycle).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_model_fetches_once_then_hits() {
        let mut buf = WeightBuffer::new(100);
        assert_eq!(buf.admit(0, 60), Admission::Fetched { evicted: vec![] });
        for _ in 0..5 {
            assert_eq!(buf.admit(0, 60), Admission::Resident);
        }
        assert!(buf.is_resident(0));
        assert_eq!(
            *buf.stats(),
            ResidencyStats { hits: 5, fetches: 1, evictions: 0, bytes_fetched: 60 }
        );
    }

    #[test]
    fn alternating_models_evict_every_time_when_only_one_fits() {
        let mut buf = WeightBuffer::new(100);
        buf.admit(0, 60);
        for round in 0..4 {
            assert_eq!(
                buf.admit(1, 70),
                Admission::Fetched { evicted: vec![0] },
                "round {round}: 1 in, 0 out"
            );
            assert_eq!(buf.admit(0, 60), Admission::Fetched { evicted: vec![1] });
        }
        let s = buf.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.fetches, 9);
        assert_eq!(s.evictions, 8);
        assert_eq!(s.bytes_fetched, 5 * 60 + 4 * 70);
    }

    #[test]
    fn both_resident_when_they_fit() {
        let mut buf = WeightBuffer::new(200);
        buf.admit(0, 60);
        buf.admit(1, 70);
        for _ in 0..3 {
            assert_eq!(buf.admit(0, 60), Admission::Resident);
            assert_eq!(buf.admit(1, 70), Admission::Resident);
        }
        assert_eq!(buf.stats().fetches, 2);
        assert_eq!(buf.stats().evictions, 0);
        assert_eq!(buf.occupied_bytes(), 130);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut buf = WeightBuffer::new(100);
        buf.admit(0, 40);
        buf.admit(1, 40);
        buf.admit(0, 40); // refresh 0: LRU is now 1
        assert_eq!(buf.admit(2, 40), Admission::Fetched { evicted: vec![1] });
        assert!(buf.is_resident(0));
        assert!(!buf.is_resident(1));
    }

    #[test]
    fn oversized_footprint_streams_without_evicting() {
        let mut buf = WeightBuffer::new(100);
        buf.admit(0, 80);
        let a = buf.admit(1, 150);
        assert_eq!(a, Admission::Streamed);
        assert!(a.fetched_from_dram());
        assert!(buf.is_resident(0), "streamed model must not evict residents");
        assert!(!buf.is_resident(1));
        assert_eq!(buf.stats().fetches, 2);
        assert_eq!(buf.stats().bytes_fetched, 230);
    }

    #[test]
    fn cold_restart_clears_residency_but_keeps_counters() {
        let mut buf = WeightBuffer::new(200);
        buf.admit(0, 60);
        buf.admit(0, 60);
        assert_eq!(buf.stats().hits, 1);
        buf.cold_restart();
        assert!(!buf.is_resident(0), "restart leaves nothing resident");
        assert_eq!(buf.occupied_bytes(), 0);
        assert_eq!(buf.stats().hits, 1, "lifetime counters survive the restart");
        assert_eq!(buf.stats().evictions, 0, "a restart is not an LRU eviction");
        assert_eq!(buf.admit(0, 60), Admission::Fetched { evicted: vec![] }, "re-fetch is charged");
        assert_eq!(buf.stats().fetches, 2);
    }

    #[test]
    fn stats_accumulate() {
        let mut a = ResidencyStats { hits: 1, fetches: 2, evictions: 3, bytes_fetched: 4 };
        a.accumulate(&ResidencyStats { hits: 10, fetches: 20, evictions: 30, bytes_fetched: 40 });
        assert_eq!(a, ResidencyStats { hits: 11, fetches: 22, evictions: 33, bytes_fetched: 44 });
    }

    #[test]
    fn fetch_cycles_round_up() {
        assert_eq!(fetch_cycles(0, 64.0), 0);
        assert_eq!(fetch_cycles(64, 64.0), 1);
        assert_eq!(fetch_cycles(65, 64.0), 2);
    }
}
