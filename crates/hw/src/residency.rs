//! Weight-buffer residency and model-switch cost accounting.
//!
//! Mixed-model serving turns the weight buffer into a cache of *models*:
//! while a model stays resident, batch after batch reuses its on-chip
//! weights and only the activation traffic recurs; switching to a
//! non-resident model re-fetches the full weight footprint — the dense
//! bytes on the baselines, the compressed basis + coefficient form (whose
//! rebuild then reruns per batch) on SmartExchange — and evicts whatever
//! no longer fits. SmartExchange's smaller footprint is therefore directly
//! visible at the serving layer as fewer evictions and refetches at equal
//! buffer size, which is the trade `se cluster` measures.
//!
//! [`WeightBuffer`] is the deterministic LRU residency model: models are
//! identified by caller-assigned indices, capacities and footprints are
//! byte counts, and every decision is a pure function of the admission
//! sequence — no clocks, no randomness — so cluster simulations built on
//! it stay bit-identical across worker counts.
//!
//! [`TieredStore`] generalizes the single buffer into an ordered stack of
//! memory tiers (weight buffer ↔ DRAM ↔ SSD/remote): each tier has a
//! capacity and a bandwidth, LRU eviction demotes to the next tier down,
//! and promotion charges serialized transfer time through every tier
//! crossed. [`WeightBuffer`] is the degenerate one-tier stack and is
//! implemented as exactly that, so the legacy admission semantics and the
//! tiered ones can never drift apart.
//!
//! Both stores expose an *observed* admission path
//! ([`TieredStore::admit_observed`]) that additionally yields the
//! [`se_obs::EventKind`] tier events (hit / promotion / demotion /
//! cold-fetch / stream) the admission produced — demotions happen deep
//! inside the eviction cascade, so only this layer can report them. The
//! plain [`TieredStore::admit`] runs the identical decision path with a
//! no-op observer.

use se_obs::EventKind;

/// Outcome of admitting one model's weights ahead of a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// The model was already resident: no DRAM weight traffic.
    Resident,
    /// The model was fetched into the buffer, evicting the listed models
    /// (LRU order) to make room.
    Fetched {
        /// Models evicted to make room, least-recently-used first.
        evicted: Vec<usize>,
    },
    /// The footprint exceeds the buffer outright: the weights are streamed
    /// from DRAM for this batch and nothing resident is disturbed. Every
    /// future batch of this model streams again.
    Streamed,
}

impl Admission {
    /// Whether this admission had to move the footprint over DRAM (a fetch
    /// or a stream — anything but a residency hit).
    pub fn fetched_from_dram(&self) -> bool {
        !matches!(self, Admission::Resident)
    }
}

/// Running residency counters of one [`WeightBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResidencyStats {
    /// Batches served with the model's weights already resident.
    pub hits: u64,
    /// Weight fetches from DRAM (switch fetches plus streamed batches).
    pub fetches: u64,
    /// Models evicted to make room for a fetch.
    pub evictions: u64,
    /// Total weight bytes moved over DRAM by those fetches.
    pub bytes_fetched: u64,
}

impl ResidencyStats {
    /// Accumulates another buffer's counters into this one (used to fold
    /// per-instance stats into a cluster total).
    pub fn accumulate(&mut self, o: &ResidencyStats) {
        self.hits += o.hits;
        self.fetches += o.fetches;
        self.evictions += o.evictions;
        self.bytes_fetched += o.bytes_fetched;
    }
}

/// One tier of a [`TieredStore`]: a named capacity with a bandwidth to
/// the tier above it.
#[derive(Debug, Clone, PartialEq)]
pub struct TierSpec {
    /// Display name (`buf`, `dram`, `ssd`, ...).
    pub name: String,
    /// Tier capacity in bytes.
    pub capacity_bytes: u64,
    /// Bytes per cycle this tier can be read at — the bandwidth of the
    /// crossing from this tier to the one above it.
    pub bytes_per_cycle: f64,
}

// `bytes_per_cycle` is validated finite and positive before a store is
// built, so equality is reflexive and the marker impl is sound.
impl Eq for TierSpec {}

impl TierSpec {
    /// Creates a tier spec.
    pub fn new(name: &str, capacity_bytes: u64, bytes_per_cycle: f64) -> TierSpec {
        TierSpec { name: name.to_string(), capacity_bytes, bytes_per_cycle }
    }
}

/// Running traffic counters of one tier in a [`TieredStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierStats {
    /// Admissions that found their model resident in this tier (tier 0:
    /// free hits; lower tiers: the promotion source).
    pub hits: u64,
    /// Entries promoted out of this tier to the top (always 0 for tier 0;
    /// equals `hits` for every lower tier).
    pub promotions: u64,
    /// Entries demoted into this tier by LRU pressure above.
    pub demotions: u64,
    /// Entries LRU-evicted out of this tier (demoted to the next tier
    /// down, or dropped cold out of the bottom tier).
    pub evictions: u64,
    /// Bytes read out of this tier by promotions, cold loads, and streams
    /// — the tier's upward traffic (the bottom tier's value is the "bytes
    /// served from the slowest memory" figure of merit).
    pub bytes_up: u64,
    /// Bytes written into this tier by demotions.
    pub bytes_down: u64,
}

impl TierStats {
    /// Accumulates another tier's counters into this one.
    pub fn accumulate(&mut self, o: &TierStats) {
        self.hits += o.hits;
        self.promotions += o.promotions;
        self.demotions += o.demotions;
        self.evictions += o.evictions;
        self.bytes_up += o.bytes_up;
        self.bytes_down += o.bytes_down;
    }
}

/// Outcome of admitting one model's weights through a [`TieredStore`].
///
/// The `cycles` of each variant is the serialized transfer time the
/// admission charges in front of its batch: a promotion from tier `j`
/// crosses tiers `j → j−1 → … → 0`, and crossing out of tier `k` costs
/// [`fetch_cycles`] at tier `k`'s bandwidth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TierAdmission {
    /// Resident at the top tier: no weight movement.
    Hit,
    /// Resident at lower tier `from`, promoted to the top.
    Promoted {
        /// Tier index the model was resident in.
        from: usize,
        /// Serialized transfer cycles through every tier crossed.
        cycles: u64,
        /// Models displaced out of the top tier to make room, LRU-first
        /// (they demote down the stack rather than vanish).
        evicted: Vec<usize>,
    },
    /// Resident nowhere: loaded from the origin (the bottom tier) through
    /// the whole stack.
    Cold {
        /// Serialized transfer cycles from the bottom tier to the top.
        cycles: u64,
        /// Models displaced out of the top tier, LRU-first.
        evicted: Vec<usize>,
    },
    /// The footprint exceeds the top tier outright: the weights stream
    /// from the origin for this batch and nothing resident is disturbed.
    Streamed {
        /// Serialized transfer cycles hauling the footprint from the
        /// origin to the staging tier (tier 1); the final tier-1 → tier-0
        /// crossing recurs per batch and is charged by the execution
        /// model, exactly like the legacy streamed path.
        cycles: u64,
    },
}

impl TierAdmission {
    /// The serialized transfer cycles this admission charges in front of
    /// its batch (0 for a hit).
    pub fn cycles(&self) -> u64 {
        match self {
            TierAdmission::Hit => 0,
            TierAdmission::Promoted { cycles, .. }
            | TierAdmission::Cold { cycles, .. }
            | TierAdmission::Streamed { cycles } => *cycles,
        }
    }
}

/// An ordered stack of memory tiers holding whole-model weight
/// footprints, LRU per tier, with demotion-on-eviction.
///
/// Tier 0 is the on-chip weight buffer; the last tier is the origin
/// (DRAM in a two-tier stack, SSD/remote below that) where cold models
/// load from. A model is resident in at most one tier at a time:
/// admission promotes it to tier 0, eviction demotes the LRU entry one
/// tier down (cascading), and eviction out of the bottom tier drops the
/// model cold — re-admitting it costs the full walk again. Demotions are
/// write-back traffic that overlaps execution, so they are counted
/// (`demotions`, `bytes_down`) but charge no cycles. Every decision is a
/// pure function of the admission sequence, preserving the determinism
/// contract of the serving stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TieredStore {
    specs: Vec<TierSpec>,
    /// Per-tier resident models with footprints, least-recently-used
    /// first.
    resident: Vec<Vec<(usize, u64)>>,
    stats: Vec<TierStats>,
    summary: ResidencyStats,
    admissions: u64,
    cold_fetches: u64,
    streams: u64,
}

impl TieredStore {
    /// Creates an empty store over the given tier stack (top first).
    ///
    /// # Panics
    ///
    /// Panics on an empty stack or a non-positive/non-finite bandwidth —
    /// caller-facing layers validate specs before construction.
    pub fn new(specs: Vec<TierSpec>) -> TieredStore {
        assert!(!specs.is_empty(), "a tiered store needs at least one tier");
        for t in &specs {
            assert!(
                t.bytes_per_cycle > 0.0 && t.bytes_per_cycle.is_finite(),
                "tier {}: bandwidth must be positive and finite",
                t.name
            );
        }
        let n = specs.len();
        TieredStore {
            specs,
            resident: vec![Vec::new(); n],
            stats: vec![TierStats::default(); n],
            summary: ResidencyStats::default(),
            admissions: 0,
            cold_fetches: 0,
            streams: 0,
        }
    }

    /// The tier stack, top first.
    pub fn tiers(&self) -> &[TierSpec] {
        &self.specs
    }

    /// Per-tier traffic counters, top first.
    pub fn tier_stats(&self) -> &[TierStats] {
        &self.stats
    }

    /// Legacy residency summary, kept exactly as a [`WeightBuffer`] would:
    /// `hits` counts top-tier hits, `fetches` every admission that moved
    /// the footprint (promotions, cold loads, streams), `bytes_fetched`
    /// those footprints, `evictions` displacements out of the top tier.
    pub fn summary(&self) -> &ResidencyStats {
        &self.summary
    }

    /// Total admissions so far. Conservation law (property-tested):
    /// `admissions == Σ tier hits + cold_fetches + streams`.
    pub fn admissions(&self) -> u64 {
        self.admissions
    }

    /// Admissions that found the model resident nowhere.
    pub fn cold_fetches(&self) -> u64 {
        self.cold_fetches
    }

    /// Admissions of footprints larger than the top tier.
    pub fn streams(&self) -> u64 {
        self.streams
    }

    /// Bytes read out of the bottom tier — the cost the stack exists to
    /// measure (cold loads and deep promotions hit it, hits near the top
    /// do not).
    pub fn bottom_bytes_up(&self) -> u64 {
        self.stats.last().map_or(0, |s| s.bytes_up)
    }

    /// Whether `model` is resident in the top tier (what routing sees as
    /// "resident": anything lower still pays a promotion walk).
    pub fn is_resident_top(&self, model: usize) -> bool {
        self.resident[0].iter().any(|&(m, _)| m == model)
    }

    /// Bytes currently occupied in tier `k`.
    pub fn occupied_bytes(&self, k: usize) -> u64 {
        self.resident[k].iter().map(|&(_, b)| b).sum()
    }

    /// Serialized cycles to move `bytes` up from tier `from` to tier `to`
    /// (exclusive): Σ over crossed tiers of [`fetch_cycles`] at the source
    /// tier's bandwidth.
    fn walk_cycles(&self, bytes: u64, from: usize, to: usize) -> u64 {
        (to + 1..=from).map(|k| fetch_cycles(bytes, self.specs[k].bytes_per_cycle)).sum()
    }

    fn charge_walk(&mut self, bytes: u64, from: usize, to: usize) -> u64 {
        for k in to + 1..=from {
            self.stats[k].bytes_up += bytes;
        }
        self.walk_cycles(bytes, from, to)
    }

    /// Installs `model` into tier 0, demoting LRU entries down the stack
    /// to make room. Returns the models displaced out of tier 0,
    /// LRU-first.
    fn install(
        &mut self,
        model: usize,
        bytes: u64,
        instance: usize,
        obs: &mut dyn FnMut(EventKind),
    ) -> Vec<usize> {
        let mut evicted = Vec::new();
        while self.occupied_bytes(0) + bytes > self.specs[0].capacity_bytes {
            let (victim, vbytes) = self.resident[0].remove(0);
            self.stats[0].evictions += 1;
            evicted.push(victim);
            self.demote(1, victim, vbytes, instance, obs);
        }
        self.summary.evictions += evicted.len() as u64;
        self.resident[0].push((model, bytes));
        evicted
    }

    /// Demotes one entry into tier `k`, cascading LRU evictions further
    /// down; past the bottom tier (or into a tier it cannot fit outright)
    /// the entry drops cold (reported with `to` = the tier count).
    /// Demotion is write-back traffic overlapping execution: counted,
    /// never charged cycles.
    fn demote(
        &mut self,
        k: usize,
        model: usize,
        bytes: u64,
        instance: usize,
        obs: &mut dyn FnMut(EventKind),
    ) {
        if k >= self.specs.len() || bytes > self.specs[k].capacity_bytes {
            obs(EventKind::TierDemoted {
                instance,
                model,
                to: self.specs.len(),
                bytes,
                dropped: true,
            });
            return;
        }
        while self.occupied_bytes(k) + bytes > self.specs[k].capacity_bytes {
            let (victim, vbytes) = self.resident[k].remove(0);
            self.stats[k].evictions += 1;
            self.demote(k + 1, victim, vbytes, instance, obs);
        }
        self.resident[k].push((model, bytes));
        self.stats[k].demotions += 1;
        self.stats[k].bytes_down += bytes;
        obs(EventKind::TierDemoted { instance, model, to: k, bytes, dropped: false });
    }

    /// Admits `model` (footprint `bytes`) ahead of a batch: a top-tier
    /// hit refreshes its LRU position for free; a lower-tier hit promotes
    /// it to the top, charging the serialized walk through every tier
    /// crossed; a model resident nowhere loads from the bottom tier
    /// through the whole stack; a footprint larger than the top tier
    /// streams from the origin without installing.
    pub fn admit(&mut self, model: usize, bytes: u64) -> TierAdmission {
        self.admit_with(model, bytes, 0, &mut |_| {})
    }

    /// [`TieredStore::admit`] with tier-event observation: runs the
    /// identical decision path and additionally returns the tier events
    /// it produced, in the order they happened (the admission outcome
    /// first, then any demotions its eviction cascade caused). `instance`
    /// is stamped into every event — the store itself does not know which
    /// cluster instance owns it.
    pub fn admit_observed(
        &mut self,
        model: usize,
        bytes: u64,
        instance: usize,
    ) -> (TierAdmission, Vec<EventKind>) {
        let mut notes = Vec::new();
        let admission = self.admit_with(model, bytes, instance, &mut |kind| notes.push(kind));
        (admission, notes)
    }

    fn admit_with(
        &mut self,
        model: usize,
        bytes: u64,
        instance: usize,
        obs: &mut dyn FnMut(EventKind),
    ) -> TierAdmission {
        self.admissions += 1;
        if let Some(pos) = self.resident[0].iter().position(|&(m, _)| m == model) {
            let entry = self.resident[0].remove(pos);
            self.resident[0].push(entry);
            self.stats[0].hits += 1;
            self.summary.hits += 1;
            obs(EventKind::TierHit { instance, model });
            return TierAdmission::Hit;
        }
        self.summary.fetches += 1;
        self.summary.bytes_fetched += bytes;
        for from in 1..self.specs.len() {
            if let Some(pos) = self.resident[from].iter().position(|&(m, _)| m == model) {
                self.resident[from].remove(pos);
                self.stats[from].hits += 1;
                self.stats[from].promotions += 1;
                let cycles = self.charge_walk(bytes, from, 0);
                obs(EventKind::TierPromoted { instance, model, from, cycles, bytes });
                let evicted = self.install(model, bytes, instance, obs);
                return TierAdmission::Promoted { from, cycles, evicted };
            }
        }
        let bottom = self.specs.len() - 1;
        if bytes > self.specs[0].capacity_bytes {
            self.streams += 1;
            // The tier-1 → tier-0 crossing recurs per batch inside the
            // streamed execution table; only the deeper haul is charged
            // here (zero for one- and two-tier stacks).
            let cycles = self.charge_walk(bytes, bottom, 1.min(bottom));
            obs(EventKind::TierStreamed { instance, model, cycles });
            return TierAdmission::Streamed { cycles };
        }
        self.cold_fetches += 1;
        let cycles = self.charge_walk(bytes, bottom, 0);
        obs(EventKind::TierColdFetch { instance, model, cycles, bytes });
        let evicted = self.install(model, bytes, instance, obs);
        TierAdmission::Cold { cycles, evicted }
    }

    /// Drops the volatile tiers — the state after the owning instance
    /// restarts. Every tier except the bottom loses its contents (the
    /// bottom tier is the durable origin: SSD contents survive a power
    /// cycle; a one-tier store loses everything, matching the legacy
    /// buffer). Lifetime counters survive, and the drops are not LRU
    /// evictions: nothing was displaced *by* a fetch.
    pub fn cold_restart(&mut self) {
        let _ = self.cold_restart_observed(0);
    }

    /// [`TieredStore::cold_restart`] with tier-event observation: the
    /// purged entries come back as `dropped` [`EventKind::TierDemoted`]
    /// events (`to` = the tier count), in tier order then LRU order —
    /// the trace's record of what the power cycle cost. Entries parked
    /// in the durable bottom tier survive and report nothing.
    pub fn cold_restart_observed(&mut self, instance: usize) -> Vec<EventKind> {
        let keep_bottom = self.specs.len() > 1;
        let last = self.specs.len() - 1;
        let mut notes = Vec::new();
        for (k, tier) in self.resident.iter_mut().enumerate() {
            if !(keep_bottom && k == last) {
                for &(model, bytes) in tier.iter() {
                    notes.push(EventKind::TierDemoted {
                        instance,
                        model,
                        to: self.specs.len(),
                        bytes,
                        dropped: true,
                    });
                }
                tier.clear();
            }
        }
        notes
    }
}

/// A finite weight buffer holding whole-model weight footprints with LRU
/// replacement — the degenerate one-tier [`TieredStore`], kept as the
/// legacy interface of the single-buffer serving path.
///
/// The buffer tracks which models' weights are currently on chip; a batch
/// admits its model before executing ([`WeightBuffer::admit`]). Capacity
/// and footprints are bytes; a zero-byte footprint is always resident-able.
/// Transfer cycles are not charged here (the scheduling layer charges the
/// switch fetch itself), so the tier bandwidth is irrelevant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightBuffer {
    store: TieredStore,
}

impl WeightBuffer {
    /// Creates an empty buffer of the given capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        WeightBuffer { store: TieredStore::new(vec![TierSpec::new("buf", capacity_bytes, 1.0)]) }
    }

    /// Buffer capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.store.tiers()[0].capacity_bytes
    }

    /// Whether `model` is currently resident.
    pub fn is_resident(&self, model: usize) -> bool {
        self.store.is_resident_top(model)
    }

    /// Bytes currently occupied by resident models.
    pub fn occupied_bytes(&self) -> u64 {
        self.store.occupied_bytes(0)
    }

    /// The residency counters accumulated so far.
    pub fn stats(&self) -> &ResidencyStats {
        self.store.summary()
    }

    /// Admits `model` (footprint `bytes`) ahead of a batch: a residency
    /// hit refreshes its LRU position for free; a miss fetches the
    /// footprint, evicting least-recently-used models until it fits; a
    /// footprint larger than the whole buffer is streamed — charged like a
    /// fetch but never made resident and never evicting anything.
    pub fn admit(&mut self, model: usize, bytes: u64) -> Admission {
        Self::map_admission(self.store.admit(model, bytes))
    }

    /// [`WeightBuffer::admit`] with tier-event observation, as
    /// [`TieredStore::admit_observed`] — the one-tier stack still reports
    /// its hits, cold fetches, streams, and drop-cold demotions.
    pub fn admit_observed(
        &mut self,
        model: usize,
        bytes: u64,
        instance: usize,
    ) -> (Admission, Vec<EventKind>) {
        let (admission, notes) = self.store.admit_observed(model, bytes, instance);
        (Self::map_admission(admission), notes)
    }

    fn map_admission(admission: TierAdmission) -> Admission {
        match admission {
            TierAdmission::Hit => Admission::Resident,
            TierAdmission::Cold { evicted, .. } => Admission::Fetched { evicted },
            TierAdmission::Streamed { .. } => Admission::Streamed,
            TierAdmission::Promoted { .. } => {
                unreachable!("a one-tier store has no lower tier to promote from")
            }
        }
    }

    /// Drops all residency — the state of the buffer after its instance
    /// restarts — while keeping the lifetime counters, so the re-fetches
    /// a restart forces are charged to the same stats. Restart evictions
    /// are not counted as LRU evictions: nothing was displaced *by* a
    /// fetch, the contents simply did not survive the power cycle.
    pub fn cold_restart(&mut self) {
        // A one-tier stack has no durable origin below it: everything is
        // volatile, exactly the legacy behaviour.
        self.store.cold_restart();
    }

    /// [`WeightBuffer::cold_restart`] with tier-event observation, as
    /// [`TieredStore::cold_restart_observed`] — every resident model
    /// reports a `dropped` demotion with `to == 1`.
    pub fn cold_restart_observed(&mut self, instance: usize) -> Vec<EventKind> {
        self.store.cold_restart_observed(instance)
    }
}

/// DRAM cycles to move a `bytes`-sized weight footprint at the given
/// bandwidth — the latency a model switch serializes in front of its first
/// batch (the fetch cannot overlap compute that needs the weights).
pub fn fetch_cycles(bytes: u64, dram_bytes_per_cycle: f64) -> u64 {
    debug_assert!(dram_bytes_per_cycle > 0.0, "bandwidth must be positive");
    (bytes as f64 / dram_bytes_per_cycle).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_model_fetches_once_then_hits() {
        let mut buf = WeightBuffer::new(100);
        assert_eq!(buf.admit(0, 60), Admission::Fetched { evicted: vec![] });
        for _ in 0..5 {
            assert_eq!(buf.admit(0, 60), Admission::Resident);
        }
        assert!(buf.is_resident(0));
        assert_eq!(
            *buf.stats(),
            ResidencyStats { hits: 5, fetches: 1, evictions: 0, bytes_fetched: 60 }
        );
    }

    #[test]
    fn alternating_models_evict_every_time_when_only_one_fits() {
        let mut buf = WeightBuffer::new(100);
        buf.admit(0, 60);
        for round in 0..4 {
            assert_eq!(
                buf.admit(1, 70),
                Admission::Fetched { evicted: vec![0] },
                "round {round}: 1 in, 0 out"
            );
            assert_eq!(buf.admit(0, 60), Admission::Fetched { evicted: vec![1] });
        }
        let s = buf.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.fetches, 9);
        assert_eq!(s.evictions, 8);
        assert_eq!(s.bytes_fetched, 5 * 60 + 4 * 70);
    }

    #[test]
    fn both_resident_when_they_fit() {
        let mut buf = WeightBuffer::new(200);
        buf.admit(0, 60);
        buf.admit(1, 70);
        for _ in 0..3 {
            assert_eq!(buf.admit(0, 60), Admission::Resident);
            assert_eq!(buf.admit(1, 70), Admission::Resident);
        }
        assert_eq!(buf.stats().fetches, 2);
        assert_eq!(buf.stats().evictions, 0);
        assert_eq!(buf.occupied_bytes(), 130);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut buf = WeightBuffer::new(100);
        buf.admit(0, 40);
        buf.admit(1, 40);
        buf.admit(0, 40); // refresh 0: LRU is now 1
        assert_eq!(buf.admit(2, 40), Admission::Fetched { evicted: vec![1] });
        assert!(buf.is_resident(0));
        assert!(!buf.is_resident(1));
    }

    #[test]
    fn oversized_footprint_streams_without_evicting() {
        let mut buf = WeightBuffer::new(100);
        buf.admit(0, 80);
        let a = buf.admit(1, 150);
        assert_eq!(a, Admission::Streamed);
        assert!(a.fetched_from_dram());
        assert!(buf.is_resident(0), "streamed model must not evict residents");
        assert!(!buf.is_resident(1));
        assert_eq!(buf.stats().fetches, 2);
        assert_eq!(buf.stats().bytes_fetched, 230);
    }

    #[test]
    fn cold_restart_clears_residency_but_keeps_counters() {
        let mut buf = WeightBuffer::new(200);
        buf.admit(0, 60);
        buf.admit(0, 60);
        assert_eq!(buf.stats().hits, 1);
        buf.cold_restart();
        assert!(!buf.is_resident(0), "restart leaves nothing resident");
        assert_eq!(buf.occupied_bytes(), 0);
        assert_eq!(buf.stats().hits, 1, "lifetime counters survive the restart");
        assert_eq!(buf.stats().evictions, 0, "a restart is not an LRU eviction");
        assert_eq!(buf.admit(0, 60), Admission::Fetched { evicted: vec![] }, "re-fetch is charged");
        assert_eq!(buf.stats().fetches, 2);
    }

    #[test]
    fn stats_accumulate() {
        let mut a = ResidencyStats { hits: 1, fetches: 2, evictions: 3, bytes_fetched: 4 };
        a.accumulate(&ResidencyStats { hits: 10, fetches: 20, evictions: 30, bytes_fetched: 40 });
        assert_eq!(a, ResidencyStats { hits: 11, fetches: 22, evictions: 33, bytes_fetched: 44 });
    }

    #[test]
    fn fetch_cycles_round_up() {
        assert_eq!(fetch_cycles(0, 64.0), 0);
        assert_eq!(fetch_cycles(64, 64.0), 1);
        assert_eq!(fetch_cycles(65, 64.0), 2);
    }

    /// buf 100 B @ 10 B/cy, dram 300 B @ 5 B/cy, ssd 1000 B @ 1 B/cy.
    fn stack() -> TieredStore {
        TieredStore::new(vec![
            TierSpec::new("buf", 100, 10.0),
            TierSpec::new("dram", 300, 5.0),
            TierSpec::new("ssd", 1000, 1.0),
        ])
    }

    #[test]
    fn cold_load_walks_the_whole_stack() {
        let mut store = stack();
        // 50 B from SSD: 50/1 (ssd→dram) + 50/5 (dram→buf) = 60 cycles.
        let a = store.admit(0, 50);
        assert_eq!(a, TierAdmission::Cold { cycles: 60, evicted: vec![] });
        assert_eq!(a.cycles(), 60);
        assert_eq!(store.admit(0, 50), TierAdmission::Hit);
        assert!(store.is_resident_top(0));
        assert_eq!(store.cold_fetches(), 1);
        assert_eq!(store.admissions(), 2);
        // Upward bytes counted at both crossed tiers; the bottom tier's
        // share is the cold-load figure of merit.
        assert_eq!(store.tier_stats()[1].bytes_up, 50);
        assert_eq!(store.tier_stats()[2].bytes_up, 50);
        assert_eq!(store.bottom_bytes_up(), 50);
        // Legacy summary matches what a WeightBuffer would count.
        assert_eq!(
            *store.summary(),
            ResidencyStats { hits: 1, fetches: 1, evictions: 0, bytes_fetched: 50 }
        );
    }

    #[test]
    fn eviction_demotes_to_the_next_tier_and_promotion_comes_back_cheaper() {
        let mut store = stack();
        store.admit(0, 60); // cold: 60 cycles
        let a = store.admit(1, 70); // evicts 0 to DRAM
        assert_eq!(a, TierAdmission::Cold { cycles: 84, evicted: vec![0] });
        assert_eq!(store.tier_stats()[0].evictions, 1);
        assert_eq!(store.tier_stats()[1].demotions, 1);
        assert_eq!(store.tier_stats()[1].bytes_down, 60);
        // 0 now promotes from DRAM: 60/5 = 12 cycles, far cheaper than
        // its 72-cycle cold load, and the SSD never sees it.
        let b = store.admit(0, 60);
        assert_eq!(b, TierAdmission::Promoted { from: 1, cycles: 12, evicted: vec![1] });
        assert_eq!(store.tier_stats()[1].hits, 1);
        assert_eq!(store.tier_stats()[1].promotions, 1);
        assert_eq!(store.bottom_bytes_up(), 60 + 70, "only the two cold loads hit the SSD");
    }

    #[test]
    fn eviction_out_of_the_bottom_tier_drops_cold() {
        let mut store = TieredStore::new(vec![
            TierSpec::new("buf", 100, 10.0),
            TierSpec::new("dram", 100, 5.0),
        ]);
        store.admit(0, 100);
        store.admit(1, 100); // 0 demotes to dram
        store.admit(2, 100); // 1 demotes to dram, 0 falls off the bottom
        assert_eq!(store.tier_stats()[1].evictions, 1);
        // 0 is cold again: full-walk cost, counted as a fresh cold fetch.
        let a = store.admit(0, 100);
        assert_eq!(a, TierAdmission::Cold { cycles: 20, evicted: vec![2] });
        assert_eq!(store.cold_fetches(), 4);
    }

    #[test]
    fn streams_haul_from_the_origin_every_batch_without_installing() {
        let mut store = stack();
        store.admit(0, 80);
        for round in 1..=3u64 {
            // 150 B > buf: stream. The deep haul (ssd→dram, 150 cycles)
            // is charged; the dram→buf crossing recurs inside the
            // streamed execution table.
            assert_eq!(store.admit(1, 150), TierAdmission::Streamed { cycles: 150 });
            assert_eq!(store.bottom_bytes_up(), 80 + 150 * round);
        }
        assert!(store.is_resident_top(0), "streams never evict residents");
        assert_eq!(store.streams(), 3);
        assert_eq!(store.tier_stats()[1].bytes_up, 80, "streams bypass the staging tier charge");
    }

    #[test]
    fn conservation_holds_per_admission() {
        let mut store = stack();
        for (model, bytes) in [(0, 60), (1, 70), (0, 60), (2, 150), (1, 70), (1, 70)] {
            store.admit(model, bytes);
            let hits: u64 = store.tier_stats().iter().map(|s| s.hits).sum();
            assert_eq!(hits + store.cold_fetches() + store.streams(), store.admissions());
            for k in 0..store.tiers().len() {
                assert!(store.occupied_bytes(k) <= store.tiers()[k].capacity_bytes);
            }
        }
    }

    #[test]
    fn cold_restart_keeps_only_the_durable_bottom_tier() {
        let mut store = stack();
        store.admit(0, 60);
        store.admit(1, 70); // 0 demoted to DRAM
        store.cold_restart();
        assert!(!store.is_resident_top(1), "top tier lost");
        assert_eq!(store.occupied_bytes(0), 0);
        assert_eq!(store.occupied_bytes(1), 0, "DRAM is volatile too");
        // Nothing reached the SSD tier as resident state, so both models
        // are cold: the post-restart load pays the full SSD walk — the
        // "lands in SSD, not free DRAM" recovery cost.
        assert_eq!(store.admit(0, 60), TierAdmission::Cold { cycles: 72, evicted: vec![] });
        // A model demoted all the way to the durable bottom tier before
        // the restart survives the power cycle as resident state there.
        let mut deep = TieredStore::new(vec![
            TierSpec::new("buf", 100, 10.0),
            TierSpec::new("dram", 100, 5.0),
            TierSpec::new("ssd", 1000, 1.0),
        ]);
        deep.admit(0, 60);
        deep.admit(1, 70); // 0 → dram
        deep.admit(2, 80); // 1 → dram, cascading 0 → ssd
        deep.cold_restart();
        assert_eq!(deep.occupied_bytes(2), 60, "the SSD copy of model 0 survives");
        assert!(matches!(deep.admit(0, 60), TierAdmission::Promoted { from: 2, .. }));
    }

    #[test]
    fn observed_admission_reports_the_walk_and_its_demotions() {
        let mut observed = stack();
        let mut plain = stack();
        // Cold load of 0, then 1 (evicting 0 → DRAM), then promote 0 back
        // (evicting 1 → DRAM): the observed path must mirror the plain
        // one bit for bit while narrating every move.
        for (model, bytes) in [(0usize, 60u64), (1, 70), (0, 60)] {
            let (a, _) = observed.admit_observed(model, bytes, 7);
            assert_eq!(a, plain.admit(model, bytes), "observed path must not change decisions");
        }
        assert_eq!(observed, plain, "identical state after identical admissions");
        let (_, notes) = observed.admit_observed(1, 70, 7);
        plain.admit(1, 70);
        assert_eq!(
            notes,
            vec![
                EventKind::TierPromoted { instance: 7, model: 1, from: 1, cycles: 14, bytes: 70 },
                EventKind::TierDemoted { instance: 7, model: 0, to: 1, bytes: 60, dropped: false },
            ]
        );
        assert_eq!(observed, plain);
        // A footprint larger than the top tier streams.
        let (_, notes) = observed.admit_observed(9, 150, 3);
        assert_eq!(notes, vec![EventKind::TierStreamed { instance: 3, model: 9, cycles: 150 }]);
        // A one-tier buffer reports drop-cold demotions with to == 1.
        let mut buf = WeightBuffer::new(100);
        buf.admit(0, 60);
        let (a, notes) = buf.admit_observed(1, 70, 0);
        assert_eq!(a, Admission::Fetched { evicted: vec![0] });
        assert_eq!(
            notes,
            vec![
                EventKind::TierColdFetch { instance: 0, model: 1, cycles: 0, bytes: 70 },
                EventKind::TierDemoted { instance: 0, model: 0, to: 1, bytes: 60, dropped: true },
            ]
        );
    }

    #[test]
    fn observed_cold_restart_reports_the_purged_entries() {
        let mut store = stack();
        store.admit(0, 60); // resident in buf
        store.admit(1, 70); // 0 demoted to dram
        let notes = store.cold_restart_observed(4);
        assert_eq!(
            notes,
            vec![
                EventKind::TierDemoted { instance: 4, model: 1, to: 3, bytes: 70, dropped: true },
                EventKind::TierDemoted { instance: 4, model: 0, to: 3, bytes: 60, dropped: true },
            ],
            "both volatile tiers purge; the empty SSD tier reports nothing"
        );
        assert_eq!(store.occupied_bytes(0) + store.occupied_bytes(1), 0);
        // The silent and observed restarts leave identical state.
        let mut silent = stack();
        silent.admit(0, 60);
        silent.admit(1, 70);
        silent.cold_restart();
        assert_eq!(store, silent);
        // A one-tier buffer purges everything.
        let mut buf = WeightBuffer::new(200);
        buf.admit(0, 60);
        let notes = buf.cold_restart_observed(2);
        assert_eq!(
            notes,
            vec![EventKind::TierDemoted { instance: 2, model: 0, to: 1, bytes: 60, dropped: true }]
        );
        assert_eq!(buf.occupied_bytes(), 0);
    }

    #[test]
    fn one_tier_store_is_bit_identical_to_the_weight_buffer() {
        // The exact alternating-eviction stream of the legacy test, run
        // through both interfaces in lockstep.
        let mut buf = WeightBuffer::new(100);
        let mut store = TieredStore::new(vec![TierSpec::new("buf", 100, 1.0)]);
        let stream = [(0usize, 60u64), (1, 70), (0, 60), (1, 70), (2, 150), (0, 60), (0, 60)];
        for (model, bytes) in stream {
            let legacy = buf.admit(model, bytes);
            let tiered = store.admit(model, bytes);
            let expect = match tiered {
                TierAdmission::Hit => Admission::Resident,
                TierAdmission::Cold { ref evicted, cycles } => {
                    assert_eq!(cycles, 0, "one tier crosses nothing");
                    Admission::Fetched { evicted: evicted.clone() }
                }
                TierAdmission::Streamed { cycles } => {
                    assert_eq!(cycles, 0);
                    Admission::Streamed
                }
                TierAdmission::Promoted { .. } => panic!("no lower tier exists"),
            };
            assert_eq!(legacy, expect);
        }
        assert_eq!(buf.stats(), store.summary());
        store.cold_restart();
        assert!(!store.is_resident_top(0), "one-tier restart loses everything");
    }
}
