//! Geometry-keyed schedule reuse.
//!
//! ResNet-style networks repeat identical layer geometries many times
//! (ResNet164 repeats each bottleneck shape 18× per stage), and the
//! data-independent part of a simulator pass — which output rows are
//! sampled, where every kernel row reads its input row, how output pixels
//! group onto MAC lanes, how filters tile onto PE slices — depends only on
//! the layer *geometry* and the accelerator *configuration*, never on the
//! weights or activations. This module provides the two pieces that let
//! every simulator compute that skeleton once per distinct shape and reuse
//! it across repeats:
//!
//! * [`ScheduleKey`] — a hashable key derived from [`LayerDesc`] geometry
//!   plus the configuration fields a schedule may depend on. The layer
//!   *name* is deliberately excluded: two layers with different names but
//!   the same shape share a schedule.
//! * [`ScheduleCache`] — a thread-safe per-run memo table from key to an
//!   immutable, shared schedule value.
//!
//! Correctness note: cached values must be **pure functions of their key**.
//! Under that contract a cache is observationally transparent — hits and
//! misses produce bit-identical simulation results, for any worker count
//! and any layer order — which is what keeps the parallel five-accelerator
//! runner's output independent of scheduling (see `se_bench::runner`).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::SeAcceleratorConfig;
use se_ir::{LayerDesc, LayerKind};

/// Cache key for a layer's simulation schedule: the full layer geometry
/// (kind with all its dimensions, plus the input feature-map size) and the
/// configuration fields that shape a schedule (PE-array tile dimensions,
/// output-row sampling, the feature toggles, and the output-GB geometry
/// the partial-sum spill target derives from).
///
/// Two keys compare equal exactly when every geometry and configuration
/// field matches; any differing field — kernel, stride, padding, channel
/// counts, input size, tile dimensions, `row_sample`, or a feature toggle —
/// produces a distinct key, so schedules can never silently collide across
/// shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduleKey {
    kind: LayerKind,
    input_hw: (usize, usize),
    dim_m: usize,
    dim_c: usize,
    dim_f: usize,
    row_sample: usize,
    bit_serial: bool,
    booth_encoder: bool,
    index_select: bool,
    compact_dedicated: bool,
    /// Output-GB geometry (bank count, bank size as `f32`-exact bits):
    /// the cached skeleton's partial-sum spill target depends on it, and
    /// cached values must stay pure functions of their key.
    output_gb_banks: usize,
    output_gb_bank_kb_bits: u64,
}

impl ScheduleKey {
    /// Key for a schedule that depends on the SmartExchange accelerator
    /// configuration (the SE engine and Bit-pragmatic, which reuses it).
    pub fn for_config(desc: &LayerDesc, cfg: &SeAcceleratorConfig) -> Self {
        ScheduleKey {
            kind: *desc.kind(),
            input_hw: desc.input_hw(),
            dim_m: cfg.dim_m,
            dim_c: cfg.dim_c,
            dim_f: cfg.dim_f,
            row_sample: cfg.row_sample,
            bit_serial: cfg.bit_serial,
            booth_encoder: cfg.booth_encoder,
            index_select: cfg.index_select,
            compact_dedicated: cfg.compact_dedicated,
            output_gb_banks: cfg.output_gb_banks,
            output_gb_bank_kb_bits: cfg.output_gb_bank_kb.to_bits(),
        }
    }

    /// Key for a configuration-independent cached value (the baseline
    /// accelerators' geometry statistics): configuration fields are pinned
    /// to neutral values so the key is pure geometry.
    ///
    /// Geometry-only keys must only ever be used in caches whose values
    /// are pure functions of the layer *shape* alone — under that contract
    /// a single cache may safely be shared across designs and even
    /// process-wide (see `se_baselines::common::shared_geometry_cache`).
    /// Never mix them into a cache holding configuration-dependent values;
    /// those belong under [`ScheduleKey::for_config`] in a per-config
    /// cache ([`ScheduleRegistry`]).
    pub fn for_geometry(desc: &LayerDesc) -> Self {
        ScheduleKey {
            kind: *desc.kind(),
            input_hw: desc.input_hw(),
            dim_m: 0,
            dim_c: 0,
            dim_f: 0,
            row_sample: 0,
            bit_serial: false,
            booth_encoder: false,
            index_select: false,
            compact_dedicated: false,
            output_gb_banks: 0,
            output_gb_bank_kb_bits: 0,
        }
    }
}

/// A thread-safe per-run memo table from [`ScheduleKey`] to a shared,
/// immutable schedule value.
///
/// Values are built at most a handful of times per distinct geometry (a
/// concurrent miss on the same key may build twice; the first insert wins
/// and both results are identical because values are pure functions of the
/// key) and shared via [`Arc`] afterwards. Cloning an accelerator shares
/// its cache — the memoized schedules stay valid because they depend only
/// on the configuration captured in the key.
#[derive(Debug)]
pub struct ScheduleCache<T> {
    inner: Arc<Mutex<HashMap<ScheduleKey, Arc<T>>>>,
}

impl<T> Default for ScheduleCache<T> {
    fn default() -> Self {
        ScheduleCache { inner: Arc::new(Mutex::new(HashMap::new())) }
    }
}

impl<T> Clone for ScheduleCache<T> {
    fn clone(&self) -> Self {
        ScheduleCache { inner: Arc::clone(&self.inner) }
    }
}

/// Caches memoize pure functions of their key, so two caches are always
/// observationally equivalent: equality ignores contents. This keeps
/// accelerator types that embed a cache `PartialEq` on their configuration
/// alone.
impl<T> PartialEq for ScheduleCache<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl<T> ScheduleCache<T> {
    /// Returns the cached value for `key`, building it with `build` on a
    /// miss. The lock is not held while building, so concurrent simulator
    /// workers never serialize on schedule construction; a racing build for
    /// the same key keeps the first inserted value.
    ///
    /// # Errors
    ///
    /// Propagates the `build` failure (nothing is cached in that case).
    pub fn get_or_try_build<E>(
        &self,
        key: ScheduleKey,
        build: impl FnOnce() -> std::result::Result<T, E>,
    ) -> std::result::Result<Arc<T>, E> {
        if let Some(hit) = self.inner.lock().expect("schedule cache never poisoned").get(&key) {
            return Ok(Arc::clone(hit));
        }
        let value = Arc::new(build()?);
        let mut map = self.inner.lock().expect("schedule cache never poisoned");
        Ok(Arc::clone(map.entry(key).or_insert(value)))
    }

    /// Number of distinct geometries cached so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("schedule cache never poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A sweep-wide registry of [`ScheduleCache`]s keyed by accelerator
/// configuration.
///
/// A per-run cache already shares schedules across *clones* of one
/// accelerator (cloning shares the `Arc`ed memo table), but separately
/// constructed instances — cluster replicas, one engine per model in a
/// serving sweep, repeated figure runs in one process — each rebuilt every
/// skeleton from scratch. A registry hands every instance with the same
/// configuration the same cache, so each distinct `(geometry, config)`
/// schedule is built once per process.
///
/// The key type `K` must capture **every** configuration field the cached
/// value may depend on (hash `f64` fields by `to_bits`): two accelerators
/// mapped to the same registry entry must be indistinguishable to the
/// builder. Under that contract sharing is observationally transparent for
/// the same reason per-run caching is — cached values are pure functions
/// of `(key, cache key)`, so hits and misses are bit-identical.
#[derive(Debug)]
pub struct ScheduleRegistry<K, T> {
    inner: Mutex<HashMap<K, ScheduleCache<T>>>,
}

impl<K, T> Default for ScheduleRegistry<K, T> {
    fn default() -> Self {
        ScheduleRegistry { inner: Mutex::new(HashMap::new()) }
    }
}

impl<K: Eq + std::hash::Hash, T> ScheduleRegistry<K, T> {
    /// The shared cache for configuration `key`, created empty on first
    /// use. The returned handle shares its memo table with every other
    /// holder of the same key.
    pub fn cache_for(&self, key: K) -> ScheduleCache<T> {
        self.inner.lock().expect("schedule registry never poisoned").entry(key).or_default().clone()
    }

    /// Number of distinct configurations registered so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("schedule registry never poisoned").len()
    }

    /// Whether no configuration has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn conv_desc(name: &str) -> LayerDesc {
        LayerDesc::new(
            name,
            LayerKind::Conv2d { in_channels: 4, out_channels: 8, kernel: 3, stride: 1, padding: 1 },
            (16, 16),
        )
    }

    fn hash_of(k: &ScheduleKey) -> u64 {
        let mut h = DefaultHasher::new();
        k.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_geometry_and_config_hash_equal() {
        let cfg = SeAcceleratorConfig::default();
        // Different layer names, identical geometry: same key, same hash.
        let a = ScheduleKey::for_config(&conv_desc("stage1_block3"), &cfg);
        let b = ScheduleKey::for_config(&conv_desc("stage1_block17"), &cfg);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn any_differing_geometry_field_changes_the_key() {
        let cfg = SeAcceleratorConfig::default();
        let base = ScheduleKey::for_config(&conv_desc("c"), &cfg);
        let variants = [
            LayerKind::Conv2d { in_channels: 5, out_channels: 8, kernel: 3, stride: 1, padding: 1 },
            LayerKind::Conv2d { in_channels: 4, out_channels: 9, kernel: 3, stride: 1, padding: 1 },
            LayerKind::Conv2d { in_channels: 4, out_channels: 8, kernel: 5, stride: 1, padding: 1 },
            LayerKind::Conv2d { in_channels: 4, out_channels: 8, kernel: 3, stride: 2, padding: 1 },
            LayerKind::Conv2d { in_channels: 4, out_channels: 8, kernel: 3, stride: 1, padding: 0 },
            LayerKind::DepthwiseConv2d { channels: 4, kernel: 3, stride: 1, padding: 1 },
        ];
        for kind in variants {
            let k = ScheduleKey::for_config(&LayerDesc::new("c", kind, (16, 16)), &cfg);
            assert_ne!(base, k, "kind {kind:?} must produce a distinct key");
        }
        // Input feature-map size is part of the geometry too.
        let resized =
            ScheduleKey::for_config(&LayerDesc::new("c", *conv_desc("c").kind(), (8, 16)), &cfg);
        assert_ne!(base, resized);
    }

    #[test]
    fn any_differing_config_field_changes_the_key() {
        let desc = conv_desc("c");
        let base = ScheduleKey::for_config(&desc, &SeAcceleratorConfig::default());
        let variants: [SeAcceleratorConfig; 10] = [
            SeAcceleratorConfig { dim_m: 32, ..Default::default() },
            SeAcceleratorConfig { dim_c: 8, ..Default::default() },
            SeAcceleratorConfig { dim_f: 4, ..Default::default() },
            SeAcceleratorConfig { row_sample: 4, ..Default::default() },
            SeAcceleratorConfig { bit_serial: false, ..Default::default() },
            SeAcceleratorConfig { booth_encoder: false, ..Default::default() },
            SeAcceleratorConfig { index_select: false, ..Default::default() },
            SeAcceleratorConfig { compact_dedicated: false, ..Default::default() },
            SeAcceleratorConfig { output_gb_banks: 4, ..Default::default() },
            SeAcceleratorConfig { output_gb_bank_kb: 8.0, ..Default::default() },
        ];
        for (i, cfg) in variants.iter().enumerate() {
            let k = ScheduleKey::for_config(&desc, cfg);
            assert_ne!(base, k, "config variant {i} must produce a distinct key");
        }
    }

    #[test]
    fn geometry_key_ignores_config() {
        let desc = conv_desc("c");
        let a = ScheduleKey::for_geometry(&desc);
        let b = ScheduleKey::for_geometry(&conv_desc("other_name"));
        assert_eq!(a, b);
        // But geometry still distinguishes.
        let c = ScheduleKey::for_geometry(&LayerDesc::new("c", *desc.kind(), (8, 8)));
        assert_ne!(a, c);
    }

    #[test]
    fn cache_builds_once_per_key_and_shares() {
        let cache: ScheduleCache<u64> = ScheduleCache::default();
        let cfg = SeAcceleratorConfig::default();
        let key = ScheduleKey::for_config(&conv_desc("c"), &cfg);
        let a = cache.get_or_try_build::<()>(key, || Ok(7)).unwrap();
        // Second lookup must not rebuild (a panicking builder proves it).
        let b = cache.get_or_try_build::<()>(key, || panic!("cache hit expected")).unwrap();
        assert_eq!(*a, *b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        // Clones share the memo table.
        let clone = cache.clone();
        clone.get_or_try_build::<()>(key, || panic!("clone shares the cache")).unwrap();
    }

    #[test]
    fn registry_shares_caches_per_key() {
        let reg: ScheduleRegistry<u32, u64> = ScheduleRegistry::default();
        assert!(reg.is_empty());
        let a = reg.cache_for(7);
        let key = ScheduleKey::for_geometry(&conv_desc("c"));
        a.get_or_try_build::<()>(key, || Ok(42)).unwrap();
        // Same registry key: a freshly fetched handle already holds the
        // schedule (a panicking builder proves the hit).
        let b = reg.cache_for(7);
        let v = b.get_or_try_build::<()>(key, || panic!("registry must share")).unwrap();
        assert_eq!(*v, 42);
        // A different configuration key gets an independent cache.
        let c = reg.cache_for(8);
        assert!(c.is_empty());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn cache_build_errors_are_not_cached() {
        let cache: ScheduleCache<u64> = ScheduleCache::default();
        let key = ScheduleKey::for_geometry(&conv_desc("c"));
        assert!(cache.get_or_try_build(key, || Err("boom")).is_err());
        assert!(cache.is_empty());
        let v = cache.get_or_try_build::<&str>(key, || Ok(3)).unwrap();
        assert_eq!(*v, 3);
    }
}
