//! Accelerator configuration (the Table V resources plus feature toggles
//! for the ablation studies).

use crate::{HwError, Result};

/// SmartExchange accelerator configuration.
///
/// Defaults reproduce Table V: `dimM = 64` PE slices, `dimC = 16` PE lines
/// per slice, `dimF = 8` MACs per line (8 K bit-serial lanes total), a
/// 512 KB input GB (32 × 16 KB banks), 4 KB output GB (2 × 2 KB), 4 KB
/// weight buffer per slice (2 × 2 KB), and 8-bit precision at 1 GHz.
///
/// The feature toggles (`bit_serial`, `index_select`, `compact_dedicated`)
/// exist for the paper's component-contribution ablation (Section V-B) and
/// the compact-model dedicated-design ablation (Fig. 15).
#[derive(Debug, Clone, PartialEq)]
pub struct SeAcceleratorConfig {
    /// PE slices (output channels in parallel).
    pub dim_m: usize,
    /// PE lines per slice (input channels in parallel).
    pub dim_c: usize,
    /// MACs per PE line (adjacent output pixels in parallel).
    pub dim_f: usize,
    /// Input global buffer: bank count.
    pub input_gb_banks: usize,
    /// Input global buffer: bank size in KB.
    pub input_gb_bank_kb: f64,
    /// Output global buffer: bank count.
    pub output_gb_banks: usize,
    /// Output global buffer: bank size in KB.
    pub output_gb_bank_kb: f64,
    /// Weight buffer banks per PE slice.
    pub weight_buf_banks: usize,
    /// Weight buffer bank size in KB.
    pub weight_buf_bank_kb: f64,
    /// DRAM bandwidth in bytes per cycle (64 B/cycle at 1 GHz = 64 GB/s;
    /// the paper's latency results presuppose sufficient DRAM bandwidth).
    pub dram_bytes_per_cycle: f64,
    /// Clock frequency in Hz (1 GHz).
    pub frequency_hz: f64,
    /// Bit-serial multipliers exploiting Booth-encoded activation bits
    /// (`false` degrades to one cycle per multiply for the ablation).
    pub bit_serial: bool,
    /// Use the 4-bit Booth encoder in front of the serial lanes; with
    /// `false` the lanes process plain essential (non-zero) bits — the
    /// Bit-pragmatic configuration.
    pub booth_encoder: bool,
    /// Index selector skipping zero coefficient/activation row pairs.
    pub index_select: bool,
    /// The dedicated dataflow for depth-wise CONV and squeeze-excite/FC
    /// layers (Section IV-B "support for compact models", ablated in
    /// Fig. 15).
    pub compact_dedicated: bool,
    /// Output-row sampling for large sweeps: simulate every `row_sample`-th
    /// output row exactly and scale the totals (`1` = exact, the default;
    /// validated against the golden model at 1).
    pub row_sample: usize,
}

impl Default for SeAcceleratorConfig {
    fn default() -> Self {
        SeAcceleratorConfig {
            dim_m: 64,
            dim_c: 16,
            dim_f: 8,
            input_gb_banks: 32,
            input_gb_bank_kb: 16.0,
            output_gb_banks: 2,
            output_gb_bank_kb: 2.0,
            weight_buf_banks: 2,
            weight_buf_bank_kb: 2.0,
            dram_bytes_per_cycle: 64.0,
            frequency_hz: 1e9,
            bit_serial: true,
            booth_encoder: true,
            index_select: true,
            compact_dedicated: true,
            row_sample: 1,
        }
    }
}

impl SeAcceleratorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidConfig`] for zero-sized arrays/buffers or a
    /// non-positive bandwidth/frequency.
    pub fn validate(&self) -> Result<()> {
        if self.dim_m == 0 || self.dim_c == 0 || self.dim_f == 0 {
            return Err(HwError::InvalidConfig {
                reason: "PE array dimensions must be positive".into(),
            });
        }
        if self.input_gb_banks == 0
            || self.output_gb_banks == 0
            || self.weight_buf_banks == 0
            || self.input_gb_bank_kb <= 0.0
            || self.output_gb_bank_kb <= 0.0
            || self.weight_buf_bank_kb <= 0.0
        {
            return Err(HwError::InvalidConfig { reason: "buffers must be non-empty".into() });
        }
        if self.dram_bytes_per_cycle <= 0.0 || self.frequency_hz <= 0.0 {
            return Err(HwError::InvalidConfig {
                reason: "bandwidth and frequency must be positive".into(),
            });
        }
        if self.row_sample == 0 {
            return Err(HwError::InvalidConfig { reason: "row_sample must be at least 1".into() });
        }
        Ok(())
    }

    /// Total input-GB capacity in bytes.
    pub fn input_gb_bytes(&self) -> f64 {
        self.input_gb_banks as f64 * self.input_gb_bank_kb * 1024.0
    }

    /// Total on-chip SRAM in bytes (input GB + output GB + all weight
    /// buffers) — the quantity equalised across accelerators in Table V.
    pub fn total_sram_bytes(&self) -> f64 {
        self.input_gb_bytes()
            + self.output_gb_banks as f64 * self.output_gb_bank_kb * 1024.0
            + self.dim_m as f64 * self.weight_buf_banks as f64 * self.weight_buf_bank_kb * 1024.0
    }

    /// Total multiplier lanes (`dimM × dimC × dimF`); with `bit_serial`
    /// these are the 8 K bit-serial lanes equivalent to 1 K 8-bit
    /// multipliers.
    pub fn total_lanes(&self) -> usize {
        self.dim_m * self.dim_c * self.dim_f
    }

    /// Disables every sparsity feature (the "similar baseline accelerator"
    /// of the Section V-B component ablation, with non-bit-serial MACs and
    /// an equal-resource 16×8×8 array).
    pub fn ablation_dense_baseline() -> Self {
        SeAcceleratorConfig {
            dim_m: 16,
            dim_c: 8,
            dim_f: 8,
            bit_serial: false,
            index_select: false,
            compact_dedicated: false,
            ..SeAcceleratorConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table5() {
        let c = SeAcceleratorConfig::default();
        assert_eq!((c.dim_m, c.dim_c, c.dim_f), (64, 16, 8));
        assert_eq!(c.total_lanes(), 8192); // 8K bit-serial multipliers
        assert!((c.input_gb_bytes() - 512.0 * 1024.0).abs() < 1e-9);
        c.validate().unwrap();
    }

    #[test]
    fn equal_resource_equivalence() {
        // 8K bit-serial lanes == 1K 8-bit multipliers (8 lanes per mult).
        let c = SeAcceleratorConfig::default();
        assert_eq!(c.total_lanes() / 8, 1024);
        // Ablation baseline: 16*8*8 = 1K non-bit-serial MACs.
        let b = SeAcceleratorConfig::ablation_dense_baseline();
        assert_eq!(b.total_lanes(), 1024);
        assert!(!b.bit_serial);
    }

    #[test]
    fn validation_rejects_degenerate() {
        let c = SeAcceleratorConfig { dim_m: 0, ..Default::default() };
        assert!(c.validate().is_err());
        let c = SeAcceleratorConfig { dram_bytes_per_cycle: 0.0, ..Default::default() };
        assert!(c.validate().is_err());
        let c = SeAcceleratorConfig { input_gb_bank_kb: -1.0, ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn total_sram_counts_all_buffers() {
        let c = SeAcceleratorConfig::default();
        // 512KB input + 4KB output + 64 slices * 4KB weight = 772KB.
        assert!((c.total_sram_bytes() - 772.0 * 1024.0).abs() < 1e-6);
    }
}
