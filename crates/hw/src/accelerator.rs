//! The accelerator interface shared by the SmartExchange design and the
//! four baselines.

use crate::{LayerResult, Result, RunResult};
use se_ir::LayerTrace;

/// A DNN inference accelerator model: consumes per-layer traces, produces
/// cycle/energy-accountable results.
///
/// All five accelerators in this workspace (SmartExchange, DianNao, SCNN,
/// Cambricon-X, Bit-pragmatic) implement this trait, so the benchmark
/// harness can sweep them uniformly over the same traces.
pub trait Accelerator {
    /// Human-readable accelerator name (as it appears in the figures).
    fn name(&self) -> &str;

    /// Processes one layer trace.
    ///
    /// # Errors
    ///
    /// Returns an error when the trace's weight form or layer kind is not
    /// supported by this design (e.g. SCNN and FC layers, per the paper's
    /// protocol).
    fn process_layer(&self, trace: &LayerTrace) -> Result<LayerResult>;

    /// Processes a sequence of layer traces into a run result.
    ///
    /// # Errors
    ///
    /// Propagates the first per-layer failure.
    fn process_layers<'a, I>(&self, traces: I) -> Result<RunResult>
    where
        I: IntoIterator<Item = &'a LayerTrace>,
        Self: Sized,
    {
        let mut run = RunResult::default();
        for t in traces {
            run.layers.push(self.process_layer(t)?);
        }
        Ok(run)
    }
}
