//! The accelerator interface shared by the SmartExchange design and the
//! four baselines.

use crate::{LayerResult, Result, RunResult};
use se_ir::LayerTrace;

/// A DNN inference accelerator model: consumes per-layer traces, produces
/// cycle/energy-accountable results.
///
/// All five accelerators in this workspace (SmartExchange, DianNao, SCNN,
/// Cambricon-X, Bit-pragmatic) implement this trait, so the benchmark
/// harness can sweep them uniformly over the same traces.
pub trait Accelerator {
    /// Human-readable accelerator name (as it appears in the figures).
    fn name(&self) -> &str;

    /// Configured DRAM bandwidth in bytes per cycle — the constant this
    /// design converts traffic into transfer cycles with. Batched results
    /// ([`Accelerator::process_batch`]) re-derive their DRAM time from it.
    fn dram_bytes_per_cycle(&self) -> f64;

    /// Processes one layer trace.
    ///
    /// # Errors
    ///
    /// Returns an error when the trace's weight form or layer kind is not
    /// supported by this design (e.g. SCNN and FC layers, per the paper's
    /// protocol).
    fn process_layer(&self, trace: &LayerTrace) -> Result<LayerResult>;

    /// Processes one layer trace for a batch of `batch` images with the
    /// layer's weights held resident across the batch: weights (and, on
    /// the SmartExchange design, the basis + coefficient rebuild work) are
    /// charged once per batch, while per-image compute and activation
    /// traffic scale with the batch size — see
    /// [`LayerResult::amortized_over_batch`]. The default implementation
    /// simulates one image and amortizes, which keeps a batch result a
    /// pure function of the trace: `batch = 1` is bit-identical to
    /// [`Accelerator::process_layer`].
    ///
    /// # Errors
    ///
    /// As [`Accelerator::process_layer`].
    fn process_batch(&self, trace: &LayerTrace, batch: usize) -> Result<LayerResult> {
        let per_image = self.process_layer(trace)?;
        Ok(per_image.amortized_over_batch(batch as u64, self.dram_bytes_per_cycle()))
    }

    /// Processes a sequence of layer traces into a run result.
    ///
    /// # Errors
    ///
    /// Propagates the first per-layer failure.
    fn process_layers<'a, I>(&self, traces: I) -> Result<RunResult>
    where
        I: IntoIterator<Item = &'a LayerTrace>,
        Self: Sized,
    {
        let mut run = RunResult::default();
        for t in traces {
            run.layers.push(self.process_layer(t)?);
        }
        Ok(run)
    }
}
