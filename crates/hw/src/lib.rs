//! The SmartExchange accelerator (Section IV of the paper): energy model,
//! memory-hierarchy accounting, Booth/bit-serial arithmetic, and a
//! deterministic tile-level cycle-accurate simulator.
//!
//! # Architecture being modelled
//!
//! * a 3-D PE array: `dimM = 64` PE slices (output channels in parallel),
//!   each with `dimC = 16` PE lines (input channels), each line with
//!   `dimF = 8` bit-serial MACs (adjacent output pixels) fed through a
//!   FIFO — the 1-D row-stationary dataflow of Fig. 6;
//! * two rebuild engines (REs) per PE line holding the basis matrix in a
//!   small register file and reconstructing weight rows with shift-and-add
//!   (ping-ponged to hide basis reloads);
//! * an index selector pairing non-zero coefficient rows with non-zero
//!   activation rows, skipping both the compute and the fetches
//!   (vector-wise sparsity, Fig. 3);
//! * Booth-encoded bit-serial multipliers whose cycle count per
//!   multiplication is the number of non-zero Booth digits of the
//!   activation (bit-level sparsity, Fig. 4);
//! * banked global buffers (input/output/index) plus per-slice weight
//!   buffers in front of DRAM, with the Table V capacities.
//!
//! # Fidelity
//!
//! [`sim::SeAccelerator`] computes cycle and access counts exactly from the
//! trace data (activation Booth digits, coefficient row masks) using the
//! tile decomposition above; [`golden`] re-derives the same counts with a
//! brute-force per-window event loop on small layers, and the test suite
//! enforces equality — the reproduction's analogue of the paper validating
//! its simulator against RTL.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;

pub mod accelerator;
pub mod config;
pub mod energy;
pub mod golden;
pub mod residency;
pub mod schedule;
pub mod sim;
pub mod stats;
pub mod window;

pub use accelerator::Accelerator;
pub use config::SeAcceleratorConfig;
pub use energy::{EnergyBreakdown, EnergyModel};
pub use error::HwError;
pub use residency::{
    Admission, ResidencyStats, TierAdmission, TierSpec, TierStats, TieredStore, WeightBuffer,
};
pub use schedule::{ScheduleCache, ScheduleKey, ScheduleRegistry};
pub use stats::{LayerResult, MemCounters, OpCounters, RunResult};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, HwError>;
