//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendor crate
//! provides exactly the API surface the SmartExchange workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! extension trait with `random::<T>()` / `random_range(range)`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast, well
//! distributed, and fully deterministic, which is all the workspace needs
//! (every experiment is seeded and asserts bit-reproducibility). The
//! stream does **not** match the real `rand::rngs::StdRng` (ChaCha12);
//! golden values in this repository are defined against this generator.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s (the subset of `rand::RngCore` we need).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the subset of `rand::SeedableRng` we need).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from the generator's raw bits
/// (the role `rand`'s `StandardUniform` distribution plays).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges a value can be drawn uniformly from (the role `rand`'s
/// `SampleRange` plays).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range {}..{}", self.start, self.end);
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {}..{}", self.start, self.end);
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Unbiased integer draw from `[0, bound)` via Lemire's widening-multiply
/// rejection method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        let low = m as u64;
        if low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
        // Rejected: retry keeps the draw exactly uniform.
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Extension methods on any [`RngCore`] (the `rand::Rng`/`RngExt` surface
/// the workspace uses).
pub trait RngExt: RngCore {
    /// Draws one uniformly distributed value of `T` (floats land in
    /// `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<f32> = (0..8).map(|_| a.random::<f32>()).collect();
        let ys: Vec<f32> = (0..8).map(|_| b.random::<f32>()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a: usize = r.random_range(0..=6);
            assert!(a <= 6);
            let b: i32 = r.random_range(-5..5);
            assert!((-5..5).contains(&b));
            let c: f32 = r.random_range(1.5..2.5);
            assert!((1.5..2.5).contains(&c));
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            let v: usize = r.random_range(0..=2);
            seen[v] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }
}
