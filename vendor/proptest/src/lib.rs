//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendor crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), range and
//! [`any`] strategies, [`collection::vec`], and the
//! [`prop_assert!`]/[`prop_assert_eq!`] assertion macros.
//!
//! Cases are drawn from a deterministic per-test generator (seeded from
//! the test name), so failures reproduce across runs. There is no
//! shrinking: a failing case reports its number and message and panics
//! immediately.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (carries the assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic generator behind each property case (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let m = u128::from(self.next_u64()) * u128::from(bound);
            if (m as u64) >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drives one `proptest!`-declared property: owns the config and the
/// deterministic per-test seed.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    seed: u64,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner { cases: config.cases, seed: h }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The generator for one case (distinct, deterministic stream per case).
    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng::new(self.seed ^ (u64::from(case).wrapping_mul(0x2545_f491_4f6c_dd1d)))
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy for any value of a type with a canonical uniform distribution.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types [`any`] can produce.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The full uniform strategy for `T` (`any::<i8>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} != {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let runner = $crate::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for(case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)*),
                        $(&$arg),*
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case, runner.cases(), e, inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// The usual glob import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestRng, TestRunner,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -4.0f32..4.0, n in 1usize..9) {
            prop_assert!((-4.0..4.0).contains(&x), "x = {}", x);
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_strategy(xs in collection::vec(0u32..10, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            for &v in &xs {
                prop_assert!(v < 10);
            }
        }

        #[test]
        fn any_bool_and_i8_sample(b in any::<bool>(), v in any::<i8>()) {
            // Both draws are valid by construction; exercise the values.
            let _ = (b, v);
            prop_assert_eq!(v as i32 as i8, v);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let runner = TestRunner::new(ProptestConfig::with_cases(4), "seed_test");
        let a: Vec<u64> = (0..4).map(|c| runner.rng_for(c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| runner.rng_for(c).next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(2))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
