//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendor crate
//! implements the subset of criterion's API the workspace benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — on top of a plain wall-clock sampler.
//!
//! Each benchmark is auto-calibrated (a short warm-up estimates the cost
//! of one iteration, then each sample runs enough iterations to fill a
//! fixed time slice) and reports min/median/mean per-iteration times.
//! Results print to stdout; there is no statistical regression analysis.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(60);
const SAMPLE_SLICE: Duration = Duration::from_millis(25);
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Times a single benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { samples: Vec::with_capacity(sample_size), sample_size }
    }

    /// Runs `f` repeatedly, recording per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: estimate the cost of one iteration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters_per_sample = ((SAMPLE_SLICE.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);

        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(t.elapsed() / iters_per_sample as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!("{name:<44} min {:>12?}  median {:>12?}  mean {:>12?}", min, median, mean);
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: DEFAULT_SAMPLE_SIZE }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup { criterion: self, sample_size }
    }
}

/// A group of related benchmarks sharing a sample-size override.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("  {name}"));
        self
    }

    /// Finishes the group (no-op beyond marking scope; kept for API parity).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Re-export of [`std::hint::black_box`] for criterion API parity.
pub use std::hint::black_box;

/// Declares a benchmark group function that runs each listed target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes flags like `--bench`; nothing to parse.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.sample_size = 1;
            b.iter(|| 1 + 1);
        });
        assert!(ran);
    }

    #[test]
    fn group_sample_size_is_clamped() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(0);
        assert_eq!(g.sample_size, 1);
        g.finish();
    }
}
