//! SmartExchange: trading higher-cost memory storage/access for lower-cost
//! computation (ISCA 2020) — a full Rust reproduction.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — the SmartExchange algorithm (decomposition + pruning +
//!   power-of-2 quantization);
//! * [`ir`] — interchange formats (layer descriptors, compressed weights,
//!   storage accounting, Booth encoding);
//! * [`hw`] — the SmartExchange accelerator simulator and energy model;
//! * [`baselines`] — DianNao, SCNN, Cambricon-X, Bit-pragmatic;
//! * [`models`] — the nine-network benchmark zoo with synthetic
//!   weights/activations and trace generation;
//! * [`serve`] — batched inference serving (weight-fetch-amortized batch
//!   engine, request queue, synthetic workloads);
//! * [`nn`] — the minimal trainable NN stack;
//! * [`tensor`] — the dense `f32` tensor/linear-algebra substrate.
//!
//! # Examples
//!
//! Compress one CONV layer and rebuild its weights:
//!
//! ```
//! use smartexchange::core::{layer, SeConfig};
//! use smartexchange::ir::{storage, LayerDesc, LayerKind};
//! use smartexchange::tensor::rng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let desc = LayerDesc::new(
//!     "conv",
//!     LayerKind::Conv2d { in_channels: 8, out_channels: 4, kernel: 3, stride: 1, padding: 1 },
//!     (8, 8),
//! );
//! let mut r = rng::seeded(1);
//! let w = rng::kaiming_tensor(&mut r, &[4, 8, 3, 3], 72);
//! let cfg = SeConfig::default().with_max_iterations(6)?;
//! let parts = layer::compress_layer(&desc, &w, &cfg)?;
//! let s = storage::se_layer_storage(&parts[0]);
//! assert!(storage::compression_rate(desc.params(), &s) > 4.0);
//! let rebuilt = layer::reconstruct_layer(&desc, &parts)?;
//! assert_eq!(rebuilt.shape(), w.shape());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use se_baselines as baselines;
pub use se_core as core;
pub use se_hw as hw;
pub use se_ir as ir;
pub use se_models as models;
pub use se_nn as nn;
pub use se_serve as serve;
pub use se_tensor as tensor;
